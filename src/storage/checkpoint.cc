#include "storage/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "util/crc32c.h"
#include "util/wire_format.h"

namespace whyprov::storage {

namespace dl = whyprov::datalog;

namespace {

util::Status Corrupt(const std::string& what) {
  return util::Status::InvalidArgument("corrupt checkpoint: " + what);
}

util::Status Errno(const std::string& what) {
  return util::Status::Error(what + ": " + std::strerror(errno));
}

util::Status WriteFully(int fd, std::string_view data) {
  const char* cursor = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Errno("checkpoint write failed");
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  return util::Status::Ok();
}

/// Extends `symbols` to the checkpoint's table, verifying the existing
/// entries are an exact prefix (same spelling at the same dense id). A
/// mismatch means the data dir was written by a different
/// program/database — refuse rather than serve the wrong answers.
util::Status RestoreSymbols(util::WireReader& reader,
                            const std::shared_ptr<dl::SymbolTable>& symbols) {
  std::uint32_t num_constants = 0;
  if (!reader.GetU32(&num_constants)) return Corrupt("constant count");
  if (num_constants < symbols->NumConstants()) {
    return util::Status::InvalidArgument(
        "checkpoint does not match this program/database: it has fewer "
        "constants than the parsed inputs");
  }
  for (std::uint32_t id = 0; id < num_constants; ++id) {
    std::string name;
    if (!reader.GetString(&name)) return Corrupt("constant name");
    if (symbols->InternConstant(name) != id) {
      return util::Status::InvalidArgument(
          "checkpoint does not match this program/database: constant '" +
          name + "' does not intern at id " + std::to_string(id));
    }
  }
  std::uint32_t num_predicates = 0;
  if (!reader.GetU32(&num_predicates)) return Corrupt("predicate count");
  if (num_predicates < symbols->NumPredicates()) {
    return util::Status::InvalidArgument(
        "checkpoint does not match this program/database: it has fewer "
        "predicates than the parsed inputs");
  }
  for (std::uint32_t id = 0; id < num_predicates; ++id) {
    std::string name;
    std::uint32_t arity = 0;
    if (!reader.GetString(&name) || !reader.GetU32(&arity)) {
      return Corrupt("predicate entry");
    }
    util::Result<dl::PredicateId> registered =
        symbols->RegisterPredicate(name, static_cast<int>(arity));
    if (!registered.ok()) return registered.status();
    if (registered.value() != id) {
      return util::Status::InvalidArgument(
          "checkpoint does not match this program/database: predicate '" +
          name + "' does not register at id " + std::to_string(id));
    }
  }
  return util::Status::Ok();
}

}  // namespace

std::string EncodeCheckpoint(const dl::Model& model,
                             std::uint64_t model_version,
                             std::uint64_t wal_records_folded) {
  util::WireWriter body;
  body.PutU64(model_version);
  body.PutU64(wal_records_folded);

  const dl::SymbolTable& symbols = model.symbols();
  body.PutU32(static_cast<std::uint32_t>(symbols.NumConstants()));
  for (std::uint32_t id = 0; id < symbols.NumConstants(); ++id) {
    body.PutString(symbols.ConstantName(id));
  }
  body.PutU32(static_cast<std::uint32_t>(symbols.NumPredicates()));
  for (std::uint32_t id = 0; id < symbols.NumPredicates(); ++id) {
    const dl::PredicateInfo& info = symbols.Predicate(id);
    body.PutString(info.name);
    body.PutU32(static_cast<std::uint32_t>(info.arity));
  }

  // The whole id space, live and tombstoned, in id order: ids are the
  // identity a restored stack must reproduce.
  body.PutU32(static_cast<std::uint32_t>(model.size()));
  for (dl::FactId id = 0; id < model.size(); ++id) {
    const dl::Fact& fact = model.fact(id);
    body.PutU32(fact.predicate);
    body.PutU32(static_cast<std::uint32_t>(fact.args.size()));
    for (const dl::SymbolId arg : fact.args) body.PutU32(arg);
    body.PutU32(static_cast<std::uint32_t>(model.rank(id)));
    body.PutU8(model.alive(id) ? 1 : 0);
  }

  // Per-predicate relation lists in their historical insertion order
  // (a revived fact sits at the END of its list, not at its id's
  // position) — this is what makes the restore order-exact.
  for (std::uint32_t p = 0; p < symbols.NumPredicates(); ++p) {
    const std::vector<dl::FactId>& relation = model.Relation(p);
    body.PutU32(static_cast<std::uint32_t>(relation.size()));
    for (const dl::FactId id : relation) body.PutU32(id);
  }

  std::string image(kCheckpointMagic);
  image.push_back(static_cast<char>(kCheckpointFormatVersion));
  util::WireWriter crc;
  crc.PutU32(util::Crc32c(body.buffer()));
  image.append(crc.buffer());
  image.append(body.buffer());
  return image;
}

util::Result<RecoveredCheckpoint> DecodeCheckpoint(
    std::string_view image,
    const std::shared_ptr<dl::SymbolTable>& symbols) {
  const std::size_t header_size = kCheckpointMagic.size() + 1 + 4;
  if (image.size() < header_size ||
      image.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return Corrupt("bad magic");
  }
  const auto version =
      static_cast<std::uint8_t>(image[kCheckpointMagic.size()]);
  if (version != kCheckpointFormatVersion) {
    return util::Status::InvalidArgument(
        "checkpoint has unsupported format version " +
        std::to_string(version));
  }
  util::WireReader crc_reader(image.data() + kCheckpointMagic.size() + 1, 4);
  std::uint32_t expected_crc = 0;
  crc_reader.GetU32(&expected_crc);
  const std::string_view body = image.substr(header_size);
  if (util::Crc32c(body) != expected_crc) return Corrupt("CRC mismatch");

  util::WireReader reader(body);
  RecoveredCheckpoint recovered{dl::Model(symbols), 0, 0};
  if (!reader.GetU64(&recovered.model_version) ||
      !reader.GetU64(&recovered.wal_records_folded)) {
    return Corrupt("version header");
  }

  if (util::Status status = RestoreSymbols(reader, symbols); !status.ok()) {
    return status;
  }
  const auto num_predicates =
      static_cast<std::uint32_t>(symbols->NumPredicates());

  // Pass 1: re-intern every fact in id order. A fresh model assigns
  // sequential ids, so Add(fact, rank) must land each fact exactly at
  // its recorded id (a duplicate fact or id skew means corruption).
  std::uint32_t fact_count = 0;
  if (!reader.GetU32(&fact_count)) return Corrupt("fact count");
  dl::Model& model = recovered.model;
  std::vector<std::uint32_t> ranks(fact_count, 0);
  std::vector<dl::FactId> dead;
  for (dl::FactId id = 0; id < fact_count; ++id) {
    dl::Fact fact;
    std::uint32_t arg_count = 0;
    if (!reader.GetU32(&fact.predicate) || !reader.GetU32(&arg_count)) {
      return Corrupt("fact entry");
    }
    if (fact.predicate >= num_predicates) return Corrupt("fact predicate id");
    const auto arity = static_cast<std::uint32_t>(
        symbols->Predicate(fact.predicate).arity);
    if (arg_count != arity) return Corrupt("fact arity");
    fact.args.resize(arg_count);
    for (std::uint32_t i = 0; i < arg_count; ++i) {
      if (!reader.GetU32(&fact.args[i])) return Corrupt("fact argument");
      if (fact.args[i] >= symbols->NumConstants()) {
        return Corrupt("fact argument symbol id");
      }
    }
    std::uint8_t alive = 0;
    if (!reader.GetU32(&ranks[id]) || !reader.GetU8(&alive)) {
      return Corrupt("fact rank/liveness");
    }
    if (alive > 1) return Corrupt("non-canonical liveness flag");
    const auto [assigned, live] =
        model.Add(std::move(fact), static_cast<int>(ranks[id]));
    if (assigned != id || !live) return Corrupt("duplicate fact in id space");
    if (alive == 0) dead.push_back(id);
  }
  model.RemoveBatch(dead);

  // Pass 2: fix up relation order. After pass 1 every relation list is
  // in id order; a recorded list that differs (revived facts re-append
  // at the end) is emptied and re-Added in recorded order — revival
  // appends at the end, reproducing the history byte-for-byte.
  for (std::uint32_t p = 0; p < num_predicates; ++p) {
    std::uint32_t count = 0;
    if (!reader.GetU32(&count)) return Corrupt("relation list count");
    std::vector<dl::FactId> recorded(count);
    std::unordered_set<dl::FactId> seen;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!reader.GetU32(&recorded[i])) return Corrupt("relation list entry");
      const dl::FactId id = recorded[i];
      if (id >= fact_count || !model.alive(id) ||
          model.fact(id).predicate != p || !seen.insert(id).second) {
        return Corrupt("relation list names a wrong or repeated fact");
      }
    }
    // Copy: RemoveBatch compacts the very list Relation() returns.
    const std::vector<dl::FactId> current = model.Relation(p);
    if (current.size() != recorded.size()) {
      return Corrupt("relation list disagrees with liveness");
    }
    if (current == recorded) continue;
    model.RemoveBatch(current);
    for (const dl::FactId id : recorded) {
      dl::Fact fact = model.fact(id);
      const auto [assigned, live] =
          model.Add(std::move(fact), static_cast<int>(ranks[id]));
      if (assigned != id || !live) return Corrupt("relation re-add skewed");
    }
  }

  if (!reader.exhausted()) return Corrupt("trailing bytes");
  return recovered;
}

util::Status WriteCheckpointFile(const std::string& path,
                                 std::string_view image) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot create '" + tmp + "'");
  util::Status status = WriteFully(fd, image);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Errno("cannot fsync '" + tmp + "'");
  }
  ::close(fd);
  if (!status.ok()) return status;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("cannot rename '" + tmp + "' into place");
  }
  // fsync the directory so the rename itself is durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return util::Status::Ok();
}

util::Result<std::string> ReadCheckpointFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return util::Status::NotFound("no checkpoint at '" + path + "'");
    }
    return Errno("cannot open '" + path + "'");
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const util::Status status = Errno("cannot read '" + path + "'");
      ::close(fd);
      return status;
    }
    if (got == 0) break;
    contents.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return contents;
}

}  // namespace whyprov::storage
