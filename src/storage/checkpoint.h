#ifndef WHYPROV_STORAGE_CHECKPOINT_H_
#define WHYPROV_STORAGE_CHECKPOINT_H_

// Snapshot checkpoints of the durability tier.
//
// A checkpoint captures one pinned model version *exactly* — the whole
// fact-id space in id order (payload, rank, liveness), the symbol
// table, and every predicate's relation list in its historical
// insertion order. Exactness matters: fact ids and relation order
// drive the CNF variable layout and enumeration order, so a restored
// stack must reproduce them bit-for-bit for post-recovery answers to
// be byte-identical to the never-restarted process. Set-equality of
// facts would not be enough (a fact removed and re-added re-appends at
// the END of its relation list, diverging from id order).
//
// Restoration goes entirely through the Model's public API: facts are
// re-Added in id order (ids are assigned sequentially), tombstones are
// re-applied with RemoveBatch, and any predicate whose recorded
// relation order differs from id order is emptied and re-Added in
// recorded order (revival re-appends at the end, reproducing the
// order). The symbol table is restored by verify-prefix-extend: the
// freshly parsed program/database must intern an exact prefix of the
// checkpoint's table, or the data dir belongs to different inputs.
//
// File layout (docs/STORAGE_FORMAT.md is the normative spec):
//
//   8-byte magic "WHYPCKPT" + u8 format version
//   u32 CRC-32C of the body | body
//
// Files are written to a temp name and renamed into place, so a crash
// mid-write never leaves a half checkpoint; a corrupt checkpoint is
// detected by the CRC and recovery falls back to full-log replay (the
// WAL is never compacted, so that is always valid).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "datalog/evaluator.h"
#include "datalog/symbol_table.h"
#include "util/status.h"

namespace whyprov::storage {

inline constexpr std::string_view kCheckpointMagic = "WHYPCKPT";
inline constexpr std::uint8_t kCheckpointFormatVersion = 1;

/// A decoded checkpoint: the exact model plus the version it pins and
/// the WAL sequence it folds (recovery replays only records beyond it).
struct RecoveredCheckpoint {
  datalog::Model model;
  std::uint64_t model_version = 0;
  std::uint64_t wal_records_folded = 0;
};

/// Serializes `model` (with its symbol table) into a complete
/// checkpoint file image (header + CRC + body). The caller must hold
/// the engine's parse mutex: concurrent fact-text parsing interns
/// constants into the shared symbol table while this reads it. Model
/// reads are thread-safe, so readers are not stalled.
std::string EncodeCheckpoint(const datalog::Model& model,
                             std::uint64_t model_version,
                             std::uint64_t wal_records_folded);

/// Rebuilds the checkpointed model over `symbols` (the freshly parsed
/// stack's table, which must be a prefix of the checkpoint's).
/// Validates the header, CRC, and internal consistency; hostile input
/// fails cleanly.
util::Result<RecoveredCheckpoint> DecodeCheckpoint(
    std::string_view image,
    const std::shared_ptr<datalog::SymbolTable>& symbols);

/// Writes `image` to `path` atomically (temp file + rename + fsync).
util::Status WriteCheckpointFile(const std::string& path,
                                 std::string_view image);

/// Reads the raw checkpoint image at `path`. kNotFound when absent.
util::Result<std::string> ReadCheckpointFile(const std::string& path);

}  // namespace whyprov::storage

#endif  // WHYPROV_STORAGE_CHECKPOINT_H_
