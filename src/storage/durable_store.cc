#include "storage/durable_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace whyprov::storage {

namespace {

/// mkdir -p: creates every missing component of `path`.
util::Status MakeDirs(const std::string& path) {
  std::string prefix;
  std::size_t position = 0;
  while (position <= path.size()) {
    const std::size_t slash = path.find('/', position);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    position = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return util::Status::Error("cannot create data dir '" + prefix +
                                 "': " + std::strerror(errno));
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const DurabilityOptions& options) {
  if (options.data_dir.empty()) {
    return util::Status::InvalidArgument(
        "DurableStore::Open requires a data_dir");
  }
  if (util::Status status = MakeDirs(options.data_dir); !status.ok()) {
    return status;
  }
  util::Result<WriteAheadLog> wal =
      WriteAheadLog::Open(options.data_dir + "/delta.wal", options.wal_fsync,
                          options.wal_group_commit);
  if (!wal.ok()) return wal.status();

  auto store =
      std::unique_ptr<DurableStore>(new DurableStore(std::move(wal).value()));
  store->group_commit_ = options.wal_fsync && options.wal_group_commit;
  store->checkpoint_path_ = options.data_dir + "/model.ckpt";
  store->checkpoint_interval_ = options.checkpoint_interval;
  util::Result<std::string> image = ReadCheckpointFile(store->checkpoint_path_);
  if (image.ok()) {
    store->checkpoint_image_ = std::move(image).value();
  } else if (image.status().code() != util::StatusCode::kNotFound) {
    return image.status();
  }
  return store;
}

util::Result<RecoveredCheckpoint> DurableStore::RestoreCheckpoint(
    const std::shared_ptr<datalog::SymbolTable>& symbols) {
  if (!has_checkpoint()) {
    return util::Status::NotFound("this store has no checkpoint");
  }
  util::Result<RecoveredCheckpoint> recovered =
      DecodeCheckpoint(checkpoint_image_, symbols);
  if (!recovered.ok()) return recovered.status();
  // A checkpoint folding records the log does not contain would leave
  // an unreplayable gap; fall back to full-log replay instead.
  if (recovered.value().wal_records_folded > wal_.last_sequence()) {
    return util::Status::InvalidArgument(
        "checkpoint folds WAL sequence " +
        std::to_string(recovered.value().wal_records_folded) +
        " but the log ends at " + std::to_string(wal_.last_sequence()));
  }
  folded_sequence_ = recovered.value().wal_records_folded;
  return recovered;
}

std::vector<WalRecord> DurableStore::TailRecords() const {
  std::vector<WalRecord> tail;
  for (const WalRecord& record : wal_.recovered()) {
    if (record.sequence > folded_sequence_) tail.push_back(record);
  }
  return tail;
}

void DurableStore::FinishRecovery(std::uint64_t replayed_deltas) {
  recovery_replayed_.store(replayed_deltas, std::memory_order_relaxed);
  wal_.ReleaseRecovered();
  checkpoint_image_.clear();
  checkpoint_image_.shrink_to_fit();
}

util::Status DurableStore::AppendDelta(
    const std::vector<std::string>& added,
    const std::vector<std::string>& removed) {
  util::Result<std::size_t> written = wal_.Append(added, removed);
  if (!written.ok()) return written.status();
  wal_appends_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.fetch_add(written.value(), std::memory_order_relaxed);
  return util::Status::Ok();
}

util::Status DurableStore::SyncWal() {
  if (!group_commit_) return util::Status::Ok();
  const util::MutexLock order(order_mutex_);
  return wal_.Sync();
}

bool DurableStore::ShouldCheckpoint() const {
  return checkpoint_interval_ > 0 &&
         wal_.last_sequence() - folded_sequence_ >= checkpoint_interval_;
}

util::Status DurableStore::WriteCheckpoint(const datalog::Model& model,
                                           std::uint64_t model_version,
                                           util::Mutex& parse_mutex) {
  std::string image;
  {
    // Concurrent fact-text parsing interns into the shared symbol
    // table; hold the engine's parse lock while reading it.
    const util::MutexLock lock(parse_mutex);
    image = EncodeCheckpoint(model, model_version, wal_.last_sequence());
  }
  if (util::Status status = WriteCheckpointFile(checkpoint_path_, image);
      !status.ok()) {
    return status;
  }
  folded_sequence_ = wal_.last_sequence();
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  return util::Status::Ok();
}

DurabilityCounters DurableStore::counters() const {
  DurabilityCounters counters;
  counters.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  counters.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  counters.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  counters.recovery_replayed_deltas =
      recovery_replayed_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace whyprov::storage
