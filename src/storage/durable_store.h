#ifndef WHYPROV_STORAGE_DURABLE_STORE_H_
#define WHYPROV_STORAGE_DURABLE_STORE_H_

// One data directory of the durability tier: the WAL plus the latest
// checkpoint, with the counters ServiceStats surfaces.
//
// Layout under data_dir:
//   delta.wal   — the write-ahead delta log (storage/wal.h)
//   model.ckpt  — the latest checkpoint (storage/checkpoint.h),
//                 replaced atomically by temp-file + rename
//
// Ownership: exactly one serving stack opens a store. A standalone
// Service opens it from its engine's options; a ShardedService owns
// one store for the whole group (its inner per-shard Services see a
// cleared data_dir and open nothing).
//
// Ordering: WAL append order must equal engine apply order, or replay
// diverges. The single (unsharded) Service executes deltas on
// arbitrary worker threads, so the store exposes `order_mutex()` and
// the owner holds it across {AppendDelta -> engine apply ->
// MaybeWriteCheckpoint}. The sharded delta lane is already a single
// serialization point but takes the same lock for uniformity.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/symbol_table.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"

namespace whyprov::storage {

/// The durability knobs a serving stack passes down (mirrored in
/// EngineOptions and whyprov_options).
struct DurabilityOptions {
  std::string data_dir;  ///< empty = durability off (no store is opened)
  /// fsync the WAL on every append: durable against power loss, not
  /// just process crash, at a large per-delta cost.
  bool wal_fsync = false;
  /// Group commit (with wal_fsync only): appends defer the fsync and
  /// the owner calls SyncWal() when its delta lane drains, so a burst
  /// of N deltas pays one fsync instead of N. Relaxation: a delta in
  /// the middle of a burst is acknowledged applied-but-not-yet-synced;
  /// it becomes power-loss durable at the burst boundary.
  bool wal_group_commit = false;
  /// Committed WAL records between checkpoints; 0 = never checkpoint
  /// (recovery replays the full log).
  std::size_t checkpoint_interval = 32;
};

/// The counters surfaced through ServiceStats / the C ABI / the STATS
/// wire frame.
struct DurabilityCounters {
  std::uint64_t wal_appends = 0;       ///< records appended this process
  std::uint64_t wal_bytes = 0;         ///< framed bytes appended
  std::uint64_t checkpoints_written = 0;
  std::uint64_t recovery_replayed_deltas = 0;  ///< WAL tail replayed at open
};

class DurableStore {
 public:
  /// Opens (creating if needed) `options.data_dir`, recovers the WAL
  /// (truncating a torn tail), and loads the checkpoint image if one
  /// exists. Recovery itself — restoring the checkpoint and replaying
  /// the tail — is driven by the owner, which knows its engine layout.
  static util::Result<std::unique_ptr<DurableStore>> Open(
      const DurabilityOptions& options);

  // --- recovery (single-threaded, before serving starts) ---------------

  bool has_checkpoint() const { return !checkpoint_image_.empty(); }

  /// Decodes the checkpoint over the freshly parsed stack's symbol
  /// table (verify-prefix-extend; see storage/checkpoint.h). On
  /// success the folded sequence is remembered so the owner replays
  /// only `TailRecords()`. A failure here is recoverable: ignore the
  /// checkpoint and replay the full log instead.
  util::Result<RecoveredCheckpoint> RestoreCheckpoint(
      const std::shared_ptr<datalog::SymbolTable>& symbols);

  /// The WAL records recovery must replay: everything after the folded
  /// sequence (the full log until RestoreCheckpoint succeeds).
  std::vector<WalRecord> TailRecords() const;

  /// Records the replay count and releases the recovery buffers.
  void FinishRecovery(std::uint64_t replayed_deltas);

  // --- the append path (hold order_mutex() across append -> apply) -----

  /// Serialises {WAL append -> engine apply -> checkpoint}: log order
  /// must equal apply order for replay to reproduce the state.
  util::Mutex& order_mutex() { return order_mutex_; }

  /// Appends one delta record (caller holds order_mutex()).
  util::Status AppendDelta(const std::vector<std::string>& added,
                           const std::vector<std::string>& removed);

  /// Flushes deferred group-commit appends (takes order_mutex() itself;
  /// the no-op fast path outside group-commit mode skips the lock).
  util::Status SyncWal();

  /// True iff enough records accumulated since the last checkpoint
  /// (caller holds order_mutex()).
  bool ShouldCheckpoint() const;

  /// Serializes `model` at `model_version` and atomically replaces the
  /// checkpoint file. `parse_mutex` is the engine's symbol-table lock,
  /// held only while encoding the symbols (model reads are
  /// thread-safe, so concurrent queries are not stalled). Caller holds
  /// order_mutex(), which pins the folded WAL sequence.
  util::Status WriteCheckpoint(const datalog::Model& model,
                               std::uint64_t model_version,
                               util::Mutex& parse_mutex);

  DurabilityCounters counters() const;

 private:
  explicit DurableStore(WriteAheadLog wal) : wal_(std::move(wal)) {}

  util::Mutex order_mutex_;
  WriteAheadLog wal_;
  bool group_commit_ = false;
  std::string checkpoint_path_;
  std::string checkpoint_image_;  ///< raw image loaded at Open; "" = none
  std::uint64_t folded_sequence_ = 0;
  std::size_t checkpoint_interval_ = 0;

  std::atomic<std::uint64_t> wal_appends_{0};
  std::atomic<std::uint64_t> wal_bytes_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> recovery_replayed_{0};
};

}  // namespace whyprov::storage

#endif  // WHYPROV_STORAGE_DURABLE_STORE_H_
