#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32c.h"
#include "util/wire_format.h"

namespace whyprov::storage {

namespace {

util::Status Errno(const std::string& what) {
  return util::Status::Error(what + ": " + std::strerror(errno));
}

/// Writes all of `data`, retrying short writes and EINTR.
util::Status WriteFully(int fd, std::string_view data) {
  const char* cursor = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Errno("WAL write failed");
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  return util::Status::Ok();
}

util::Result<std::string> ReadWholeFile(int fd, const std::string& path) {
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("cannot read '" + path + "'");
    }
    if (got == 0) return contents;
    contents.append(buffer, static_cast<std::size_t>(got));
  }
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  util::WireWriter writer;
  writer.PutU8(kWalDeltaRecord);
  writer.PutU64(record.sequence);
  writer.PutStringList(record.added);
  writer.PutStringList(record.removed);
  return writer.Take();
}

util::Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  util::WireReader reader(payload);
  std::uint8_t type = 0;
  if (!reader.GetU8(&type)) {
    return util::Status::InvalidArgument("WAL record: empty payload");
  }
  if (type != kWalDeltaRecord) {
    return util::Status::InvalidArgument(
        "WAL record: unknown record type " + std::to_string(type));
  }
  WalRecord record;
  reader.GetU64(&record.sequence);
  reader.GetStringList(&record.added);
  reader.GetStringList(&record.removed);
  if (!reader.ok()) {
    return util::Status::InvalidArgument("WAL record: truncated payload");
  }
  if (!reader.exhausted()) {
    return util::Status::InvalidArgument(
        "WAL record: trailing bytes after payload");
  }
  return record;
}

WalReplay ReplayWalBuffer(std::string_view records) {
  WalReplay replay;
  std::size_t position = 0;
  while (records.size() - position >= 8) {
    util::WireReader header(records.data() + position, 8);
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    header.GetU32(&length);
    header.GetU32(&crc);
    if (length == 0 || length > kMaxWalRecordBytes ||
        length > records.size() - position - 8) {
      break;  // torn tail: the length field promises bytes not present
    }
    const std::string_view payload = records.substr(position + 8, length);
    if (util::Crc32c(payload) != crc) break;
    util::Result<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) break;
    // Sequences are 1-based positions; a gap or repeat means the file
    // was stitched together wrongly — stop trusting it here.
    if (record.value().sequence != replay.records.size() + 1) break;
    replay.records.push_back(std::move(record).value());
    position += 8 + length;
  }
  replay.valid_bytes = position;
  replay.torn_tail = position < records.size();
  return replay;
}

util::Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                                bool fsync_each,
                                                bool group_commit) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open WAL '" + path + "'");

  WriteAheadLog log;
  log.fd_ = fd;
  log.fsync_each_ = fsync_each;
  log.group_commit_ = fsync_each && group_commit;

  util::Result<std::string> contents = ReadWholeFile(fd, path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();

  const std::size_t header_size = kWalMagic.size() + 1;
  if (bytes.empty()) {
    // Fresh log: stamp the header before the first record.
    std::string header(kWalMagic);
    header.push_back(static_cast<char>(kWalFormatVersion));
    if (util::Status status = WriteFully(fd, header); !status.ok()) {
      return status;
    }
    if (::fsync(fd) != 0) return Errno("cannot fsync WAL '" + path + "'");
    return log;
  }
  if (bytes.size() < header_size ||
      std::string_view(bytes).substr(0, kWalMagic.size()) != kWalMagic) {
    return util::Status::InvalidArgument(
        "'" + path + "' is not a whyprov WAL (bad magic)");
  }
  const auto version = static_cast<std::uint8_t>(bytes[kWalMagic.size()]);
  if (version != kWalFormatVersion) {
    return util::Status::InvalidArgument(
        "WAL '" + path + "' has unsupported format version " +
        std::to_string(version));
  }

  WalReplay replay =
      ReplayWalBuffer(std::string_view(bytes).substr(header_size));
  if (replay.torn_tail) {
    const auto keep = static_cast<off_t>(header_size + replay.valid_bytes);
    if (::ftruncate(fd, keep) != 0) {
      return Errno("cannot truncate torn WAL tail in '" + path + "'");
    }
    if (::fsync(fd) != 0) return Errno("cannot fsync WAL '" + path + "'");
    if (::lseek(fd, keep, SEEK_SET) < 0) {
      return Errno("cannot seek WAL '" + path + "'");
    }
  }
  log.last_sequence_ = replay.records.size();
  log.truncated_torn_tail_ = replay.torn_tail;
  log.recovered_ = std::move(replay.records);
  return log;
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      fsync_each_(other.fsync_each_),
      group_commit_(other.group_commit_),
      dirty_(other.dirty_),
      last_sequence_(other.last_sequence_),
      truncated_torn_tail_(other.truncated_torn_tail_),
      recovered_(std::move(other.recovered_)) {}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    fsync_each_ = other.fsync_each_;
    group_commit_ = other.group_commit_;
    dirty_ = other.dirty_;
    last_sequence_ = other.last_sequence_;
    truncated_torn_tail_ = other.truncated_torn_tail_;
    recovered_ = std::move(other.recovered_);
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

util::Result<std::size_t> WriteAheadLog::Append(
    const std::vector<std::string>& added,
    const std::vector<std::string>& removed) {
  WalRecord record;
  record.sequence = last_sequence_ + 1;
  record.added = added;
  record.removed = removed;
  const std::string payload = EncodeWalRecord(record);
  if (payload.size() > kMaxWalRecordBytes) {
    return util::Status::ResourceExhausted(
        "WAL record of " + std::to_string(payload.size()) +
        " bytes exceeds the cap of " + std::to_string(kMaxWalRecordBytes));
  }
  util::WireWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutU32(util::Crc32c(payload));
  std::string framed = frame.Take();
  framed.append(payload);
  if (util::Status status = WriteFully(fd_, framed); !status.ok()) {
    return status;
  }
  if (fsync_each_) {
    if (group_commit_) {
      // Deferred: one Sync() at the burst boundary covers this record.
      dirty_ = true;
    } else if (::fsync(fd_) != 0) {
      return Errno("WAL fsync failed");
    }
  }
  ++last_sequence_;
  return framed.size();
}

util::Status WriteAheadLog::Sync() {
  if (!dirty_) return util::Status::Ok();
  if (::fsync(fd_) != 0) return Errno("WAL fsync failed");
  dirty_ = false;
  return util::Status::Ok();
}

}  // namespace whyprov::storage
