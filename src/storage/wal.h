#ifndef WHYPROV_STORAGE_WAL_H_
#define WHYPROV_STORAGE_WAL_H_

// The write-ahead delta log of the durability tier.
//
// One WAL file holds the totally-ordered sequence of delta requests a
// serving stack committed, in text form (rendered facts), so replaying
// the log through the normal ApplyDelta path reproduces the exact model
// — fact ids, ranks, and relation order included — by determinism of
// the evaluator. The discipline is ARIES-style log-then-apply: a record
// is appended (and optionally fsynced) *before* the delta is applied,
// so a crash can lose at most an unacknowledged tail, never an applied
// delta. Replay tolerates records whose delta fails validation: the
// original run failed them identically, leaving the state untouched.
//
// On-disk layout (docs/STORAGE_FORMAT.md is the normative spec):
//
//   header: 8-byte magic "WHYPWAL\n" + u8 format version
//   record: u32 payload length (LE) | u32 CRC-32C of payload | payload
//   payload: u8 record type (0x01 = delta) + u64 sequence
//            + string list added + string list removed
//
// A record's sequence is its 1-based position in the file; checkpoints
// store the sequence they fold, and recovery replays only the tail
// beyond it. The log is never truncated or compacted — a full-log
// replay from the base state is always a valid (if slower) recovery,
// which is what keeps by-predicate sharded recovery and serving-mode
// changes correct without per-mode checkpoint formats.
//
// Torn tails are expected: Open() scans the file, keeps the longest
// valid record prefix, and truncates the rest (a crash mid-append
// leaves a short or CRC-failing final record). Anything after the
// first invalid byte is dropped.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace whyprov::storage {

inline constexpr std::string_view kWalMagic = "WHYPWAL\n";
inline constexpr std::uint8_t kWalFormatVersion = 1;
inline constexpr std::uint8_t kWalDeltaRecord = 0x01;

/// Hard ceiling on one record's payload length, mirroring the wire
/// protocol's frame cap: a larger length field cannot be honest.
inline constexpr std::uint32_t kMaxWalRecordBytes = 16u * 1024 * 1024;

/// One committed (or at least attempted) delta, in replayable text form.
struct WalRecord {
  std::uint64_t sequence = 0;  ///< 1-based position in the log
  std::vector<std::string> added;    ///< rendered fact texts to add
  std::vector<std::string> removed;  ///< rendered fact texts to remove
};

/// Encodes one record payload (type byte + body; no length/CRC framing).
std::string EncodeWalRecord(const WalRecord& record);

/// Decodes one record payload. Rejects unknown record types, truncated
/// bodies, and trailing bytes. Never crashes on hostile input (the
/// fuzz_wal harness drives this directly).
util::Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// Outcome of scanning a WAL's record region (the bytes after the file
/// header): the longest valid record prefix and where it ends.
struct WalReplay {
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix, relative to the record region's start.
  std::size_t valid_bytes = 0;
  /// True iff bytes beyond the valid prefix were present (a torn or
  /// corrupt tail that Open() truncates).
  bool torn_tail = false;
};

/// Torn-tail-tolerant replay over an in-memory record region. Stops at
/// the first short header, zero/oversized length, CRC mismatch, payload
/// decode failure, or out-of-order sequence. Total, never crashes.
WalReplay ReplayWalBuffer(std::string_view records);

/// An open WAL file positioned for appending. Open() performs the
/// recovery scan (and tail truncation); Append() frames and writes one
/// record, assigning the next sequence. Not internally synchronised —
/// the owner serialises appends (the delta lane / DurableStore order
/// mutex).
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`, validates the header,
  /// scans the records, and truncates a torn tail. `fsync_each` makes
  /// every Append fsync before returning (durable against power loss,
  /// not just process crash). With `group_commit` too, Append only
  /// marks the log dirty and the owner coalesces the fsyncs by calling
  /// Sync() at burst boundaries — one fsync covers every record
  /// appended since the last one.
  static util::Result<WriteAheadLog> Open(const std::string& path,
                                          bool fsync_each,
                                          bool group_commit = false);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// The records recovered by Open(), in log order.
  const std::vector<WalRecord>& recovered() const { return recovered_; }

  /// True iff Open() dropped a torn/corrupt tail.
  bool truncated_torn_tail() const { return truncated_torn_tail_; }

  /// Sequence of the last record in the log (0 = empty log).
  std::uint64_t last_sequence() const { return last_sequence_; }

  /// Releases the recovery buffer once the owner has replayed it.
  void ReleaseRecovered() {
    recovered_.clear();
    recovered_.shrink_to_fit();
  }

  /// Appends one delta record, assigning sequence last_sequence() + 1.
  /// Returns the framed byte count written. Not thread-safe.
  util::Result<std::size_t> Append(const std::vector<std::string>& added,
                                   const std::vector<std::string>& removed);

  /// Flushes deferred group-commit appends to disk: fsyncs iff records
  /// were appended since the last sync. A no-op unless the log was
  /// opened with both fsync and group commit. Not thread-safe (same
  /// owner lock as Append).
  util::Status Sync();

  /// True iff appended records await a Sync() (group-commit mode only).
  bool dirty() const { return dirty_; }

 private:
  WriteAheadLog() = default;

  int fd_ = -1;
  bool fsync_each_ = false;
  bool group_commit_ = false;
  bool dirty_ = false;
  std::uint64_t last_sequence_ = 0;
  bool truncated_torn_tail_ = false;
  std::vector<WalRecord> recovered_;
};

}  // namespace whyprov::storage

#endif  // WHYPROV_STORAGE_WAL_H_
