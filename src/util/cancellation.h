#ifndef WHYPROV_UTIL_CANCELLATION_H_
#define WHYPROV_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "util/status.h"

namespace whyprov::util {

/// A copyable, thread-safe view onto one request's interruption state: an
/// explicit cancel flag (raised by `CancellationSource::Cancel`) plus an
/// optional absolute deadline. Cheap to copy (one shared_ptr) and safe to
/// poll from any thread — the solver loop, the enumerator, and the service
/// worker all poll the same token. A default-constructed token is empty
/// and never reports an interruption, so plumbing stays unconditional.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// True iff this token is connected to a source (an empty token never
  /// stops anything).
  bool valid() const { return state_ != nullptr; }

  /// True once the source's Cancel() was called.
  bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// True once the deadline (if any) has passed.
  bool expired() const {
    return state_ != nullptr && state_->has_deadline &&
           Clock::now() >= state_->deadline;
  }

  /// The one predicate long-running loops poll: stop on either reason.
  bool ShouldStop() const { return cancelled() || expired(); }

  /// The absolute deadline carried by this token, if any. Long-running
  /// backends use it as a *hint* — e.g. the CDCL solver budgets its
  /// remaining conflicts against it so it can stop at a restart boundary
  /// instead of being chopped mid-search by the poll.
  std::optional<Clock::time_point> deadline() const {
    if (state_ == nullptr || !state_->has_deadline) return std::nullopt;
    return state_->deadline;
  }

  /// Classifies the interruption: kCancelled (explicit cancel wins),
  /// kDeadlineExceeded, or Ok when the token does not demand a stop.
  Status InterruptionStatus() const {
    if (cancelled()) {
      return Status::Cancelled("the request was cancelled");
    }
    if (expired()) {
      return Status::DeadlineExceeded("the request deadline passed");
    }
    return Status::Ok();
  }

 private:
  friend class CancellationSource;

  struct State {
    std::atomic<bool> cancelled{false};
    /// The deadline is written once, before the token is shared (see
    /// CancellationSource::SetDeadline), so readers need no lock.
    bool has_deadline = false;
    Clock::time_point deadline{};
  };

  explicit CancellationToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// The producer side: owns the shared state, hands out tokens, and raises
/// the cancel flag. One source per request; Cancel() is idempotent and
/// may race freely with any number of polling tokens.
class CancellationSource {
 public:
  CancellationSource()
      : state_(std::make_shared<CancellationToken::State>()) {}

  /// Raises the cancel flag; every token observes it on its next poll.
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }

  /// Installs an absolute deadline. Must be called before tokens are
  /// handed to other threads (the deadline fields are not atomic).
  void SetDeadline(CancellationToken::Clock::time_point deadline) {
    state_->has_deadline = true;
    state_->deadline = deadline;
  }

  /// Installs a deadline `seconds` from now (<= 0 clears nothing: no-op).
  void SetTimeout(double seconds) {
    if (seconds <= 0) return;
    SetDeadline(CancellationToken::Clock::now() +
                std::chrono::duration_cast<CancellationToken::Clock::duration>(
                    std::chrono::duration<double>(seconds)));
  }

  /// A token sharing this source's state.
  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<CancellationToken::State> state_;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_CANCELLATION_H_
