#include "util/crc32c.h"

#include <array>

namespace whyprov::util {

namespace {

/// The byte-at-a-time lookup table for the reflected Castagnoli
/// polynomial 0x82F63B78, built once at static-init time.
std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace whyprov::util
