#ifndef WHYPROV_UTIL_CRC32C_H_
#define WHYPROV_UTIL_CRC32C_H_

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41): the checksum guarding
// every WAL record and checkpoint file on disk (docs/STORAGE_FORMAT.md).
// Software table implementation — the storage tier's bottleneck is
// fsync, not checksumming, so no hardware dispatch is needed.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace whyprov::util {

/// CRC-32C over `size` bytes, continuing from `seed` (pass 0 to start a
/// fresh checksum; chain calls by passing the previous result).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_CRC32C_H_
