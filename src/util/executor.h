#ifndef WHYPROV_UTIL_EXECUTOR_H_
#define WHYPROV_UTIL_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace whyprov::util {

/// Resolves a thread-count request: 0 means "one per hardware thread"
/// (at least 1).
inline std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

/// Scheduling identity attached to a submitted task. The default tag
/// (interactive lane, empty tenant, shard 0, unit cost) is what every
/// pre-QoS caller implicitly submits, and a scheduler seeing only
/// default tags must pop in exact FIFO order — that equivalence is an
/// architecture invariant (docs/ARCHITECTURE.md) and is tested in
/// tests/test_qos.cc.
struct TaskTag {
  /// 0 = interactive, 1 = batch (mirrors qos::QosClass).
  std::uint8_t lane = 0;
  /// Tenant / client identity; "" is the shared default tenant.
  std::string tenant;
  /// Originating shard, for fair dequeue across a shared shard pool.
  std::uint64_t shard = 0;
  /// Estimated execution cost in abstract units (>= 0).
  double cost = 1.0;
};

/// The executor's queue discipline, pluggable so a scheduler (e.g.
/// qos::FairScheduler) can replace the FIFO default. Implementations are
/// *externally synchronized*: every call happens under the owning
/// executor's mutex, so they need no locking of their own — and must not
/// block or call back into the executor.
class TaskQueue {
 public:
  virtual ~TaskQueue() = default;

  /// Accepts a task with its scheduling tag. Only called after the
  /// executor checked `size() < capacity`, so Push cannot refuse.
  virtual void Push(std::function<void()> task, const TaskTag& tag) = 0;

  /// Removes and returns the next task by the queue's discipline.
  /// Only called when `size() > 0`.
  virtual std::function<void()> Pop() = 0;

  /// Tasks currently held.
  virtual std::size_t size() const = 0;
};

/// The default discipline: strict FIFO, tags ignored. Behaviour is
/// identical to the pre-TaskQueue executor.
class FifoTaskQueue : public TaskQueue {
 public:
  void Push(std::function<void()> task, const TaskTag& /*tag*/) override {
    queue_.push_back(std::move(task));
  }
  std::function<void()> Pop() override {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    return task;
  }
  std::size_t size() const override { return queue_.size(); }

 private:
  std::deque<std::function<void()>> queue_;
};

/// A fixed worker pool with a bounded task queue — the generalisation
/// of the old `util::ParallelFor` fan-out into a reusable building block.
/// Two usage modes:
///
///   * long-lived serving pool (`whyprov::Service`): tasks enter through
///     `TrySubmit`, which refuses with `kResourceExhausted` once the queue
///     holds `queue_capacity` unstarted tasks — the admission-control
///     backstop that keeps a flooded server's memory bounded;
///   * scoped batch fan-out (`Engine::EnumerateBatch` and friends):
///     `Map(n, fn)` runs `fn(0..n-1)` across the workers plus the calling
///     thread, dynamically load-balanced, and blocks until every index
///     completed.
///
/// Tasks must not throw. Destruction (or `Shutdown`) stops admission,
/// drains every already-queued task, and joins the workers.
struct ExecutorOptions {
  /// Worker threads (0 = one per hardware thread).
  std::size_t num_threads = 0;
  /// Unstarted tasks the queue will hold before TrySubmit refuses.
  std::size_t queue_capacity = 1024;
  /// Queue discipline; null = bounded FIFO. The executor takes shared
  /// ownership and serialises every access under its own mutex.
  std::shared_ptr<TaskQueue> queue;
};

class Executor {
 public:
  /// Declared at namespace scope (as ExecutorOptions) so it can appear in
  /// default arguments; the nested alias is the ergonomic name.
  using Options = ExecutorOptions;

  explicit Executor(Options options = Options())
      : capacity_(std::max<std::size_t>(1, options.queue_capacity)),
        queue_(options.queue != nullptr
                   ? std::move(options.queue)
                   : std::make_shared<FifoTaskQueue>()) {
    const std::size_t threads = ResolveThreadCount(options.num_threads);
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  ~Executor() { Shutdown(); }

  /// Enqueues `task` for a worker under the default tag. Refuses with
  /// kResourceExhausted when the queue is at capacity and with
  /// kInvalidArgument after Shutdown — callers surface the former as
  /// server-overloaded to their clients.
  Status TrySubmit(std::function<void()> task) EXCLUDES(mutex_) {
    return TrySubmit(std::move(task), TaskTag());
  }

  /// As above, with an explicit scheduling tag for the queue discipline.
  Status TrySubmit(std::function<void()> task, const TaskTag& tag)
      EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      if (shutdown_) {
        return Status::InvalidArgument("the executor is shut down");
      }
      if (queue_->size() >= capacity_) {
        return Status::ResourceExhausted(
            "the executor queue is full (" + std::to_string(capacity_) +
            " pending tasks)");
      }
      queue_->Push(std::move(task), tag);
    }
    work_cv_.NotifyOne();
    return Status::Ok();
  }

  /// Worker threads in the pool.
  std::size_t num_threads() const { return workers_.size(); }

  /// Tasks admitted but not yet started.
  std::size_t pending() const EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return queue_->size();
  }

  /// Tasks currently executing on workers.
  std::size_t active() const EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return active_;
  }

  /// Stops admission, drains every queued task, joins the workers.
  /// Idempotent.
  void Shutdown() EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      if (shutdown_) {
        // A second Shutdown (e.g. destructor after an explicit call) must
        // still wait for the joins below, but they already happened.
        if (workers_.empty()) return;
      }
      shutdown_ = true;
    }
    work_cv_.NotifyAll();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }

  /// Runs `fn(0) ... fn(n - 1)` across the pool plus the calling thread,
  /// dynamically load-balanced via an atomic index; blocks until every
  /// call returned. Callers are responsible for making `fn` safe to run
  /// concurrently; distinct indices must touch distinct output slots.
  /// Bypasses the admission bound: the helper tasks it enqueues only
  /// steal indices, so any that are refused simply shift work onto the
  /// remaining participants.
  template <typename Fn>
  void Map(std::size_t n, const Fn& fn) {
    if (n == 0) return;
    struct Shared {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> live_helpers{0};
      Mutex mutex;
      CondVar done_cv;
    };
    const auto shared = std::make_shared<Shared>();
    const auto drain = [shared, n, &fn] {
      for (std::size_t i =
               shared->next.fetch_add(1, std::memory_order_relaxed);
           i < n;
           i = shared->next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    };
    // One index-stealing helper per worker (capped at n - 1: the caller
    // takes an index too). `fn` is captured by reference — safe because
    // Map blocks until every helper finished.
    const std::size_t helpers = std::min(num_threads(), n - 1);
    std::size_t enqueued = 0;
    for (std::size_t i = 0; i < helpers; ++i) {
      shared->live_helpers.fetch_add(1, std::memory_order_relaxed);
      const Status submitted = TrySubmit([shared, drain] {
        drain();
        if (shared->live_helpers.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          const MutexLock lock(shared->mutex);
          shared->done_cv.NotifyAll();
        }
      });
      if (!submitted.ok()) {
        shared->live_helpers.fetch_sub(1, std::memory_order_acq_rel);
        break;  // queue full: the caller and accepted helpers cover it
      }
      ++enqueued;
    }
    drain();  // the calling thread participates
    if (enqueued > 0) {
      const MutexLock lock(shared->mutex);
      while (shared->live_helpers.load(std::memory_order_acquire) != 0) {
        shared->done_cv.Wait(shared->mutex);
      }
    }
  }

 private:
  void WorkerLoop() EXCLUDES(mutex_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!shutdown_ && queue_->size() == 0) work_cv_.Wait(mutex_);
        if (queue_->size() == 0) return;  // shutdown with a drained queue
        task = queue_->Pop();
        ++active_;
      }
      task();
      {
        const MutexLock lock(mutex_);
        --active_;
      }
    }
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar work_cv_;
  /// The discipline object is shared (e.g. a scheduler the owner also
  /// configures), but every Push/Pop/size call happens under mutex_.
  const std::shared_ptr<TaskQueue> queue_ GUARDED_BY(mutex_);
  std::size_t active_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_EXECUTOR_H_
