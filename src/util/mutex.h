#ifndef WHYPROV_UTIL_MUTEX_H_
#define WHYPROV_UTIL_MUTEX_H_

// Annotated synchronization primitives. These are thin, zero-overhead
// wrappers over std::mutex / std::condition_variable that carry the
// capability attributes from util/thread_annotations.h, so Clang's
// thread-safety analysis (-Werror=thread-safety in CI) can prove at
// compile time that every GUARDED_BY field is only touched with its
// mutex held and every *Locked() helper is only called under the lock.
//
// Project rule (enforced by tools/lint.py): outside src/util/ these are
// the ONLY synchronization primitives — no raw std::mutex,
// std::lock_guard, std::unique_lock, or std::condition_variable.
//
// Waiting convention: condition waits are written as explicit loops,
//
//   MutexLock lock(mutex_);
//   while (!done_) cv_.Wait(mutex_);
//
// rather than predicate lambdas, because the analysis checks a lambda
// body as a separate function and cannot see that it runs under the
// caller's lock. The loop form keeps every guarded access inside the
// annotated scope.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace whyprov::util {

/// A non-recursive mutual-exclusion capability. Same cost and semantics
/// as the std::mutex it wraps; the wrapper only adds annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mutex_.lock(); }
  void Unlock() RELEASE() { mutex_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Tells the analysis this thread holds the mutex when it cannot see
  /// the acquisition (e.g. inside a callback invoked under the lock).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;  // waits on the wrapped handle directly
  std::mutex mutex_;
};

/// RAII lock: acquires in the constructor, releases in the destructor.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over util::Mutex. Wraps std::condition_variable
/// (not _any), adopting the wrapped handle for the duration of each
/// wait, so the fast native futex path is preserved.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and blocks until notified (or a
  /// spurious wakeup); reacquires before returning. Callers loop on
  /// their predicate.
  void Wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  /// As Wait, but gives up once `deadline` passes. Returns true iff the
  /// deadline passed (the predicate may still have become true — the
  /// caller's loop rechecks it under the reacquired lock).
  bool WaitUntil(Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const bool timed_out = cv_.wait_until(lock, deadline) ==
                           std::cv_status::timeout;
    lock.release();
    return timed_out;
  }

  /// As WaitUntil, with a relative timeout in seconds (<= 0 expires
  /// immediately, after one lock release/reacquire).
  bool WaitFor(Mutex& mutex, double seconds) REQUIRES(mutex) {
    return WaitUntil(
        mutex, std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::
                                                  duration>(
                       std::chrono::duration<double>(seconds)));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_MUTEX_H_
