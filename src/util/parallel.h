#ifndef WHYPROV_UTIL_PARALLEL_H_
#define WHYPROV_UTIL_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace whyprov::util {

/// Resolves a thread-count request: 0 means "one per hardware thread"
/// (at least 1).
inline std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

/// Runs `fn(0) ... fn(n - 1)` across `num_threads` worker threads
/// (0 = one per hardware thread), dynamically load-balanced via an atomic
/// work index; blocks until every call returned. Callers are responsible
/// for making `fn` safe to run concurrently; distinct indices must touch
/// distinct output slots. With one thread (or n <= 1) everything runs
/// inline on the calling thread.
template <typename Fn>
void ParallelFor(std::size_t n, std::size_t num_threads, const Fn& fn) {
  if (n == 0) return;
  num_threads = std::min(ResolveThreadCount(num_threads), n);
  if (num_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (std::size_t t = 1; t < num_threads; ++t) workers.emplace_back(worker);
  worker();
  for (std::thread& thread : workers) thread.join();
}

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_PARALLEL_H_
