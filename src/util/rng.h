#ifndef WHYPROV_UTIL_RNG_H_
#define WHYPROV_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace whyprov::util {

/// Deterministic SplitMix64-seeded xoshiro256** pseudo-random generator.
/// Used by all workload generators and property tests so that every run of
/// the suite is reproducible from a single integer seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit word.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t UniformInt(std::uint64_t bound) {
    // Lemire's unbiased bounded generation would be overkill here; simple
    // rejection keeps the generator bias-free.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t value = Next();
    while (value >= limit) value = Next();
    return value % bound;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_RNG_H_
