#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace whyprov::util {

namespace {

Status ErrnoStatus(const char* what) {
  // std::error_code::message instead of strerror: the latter returns a
  // pointer into shared static storage, and these helpers run on every
  // server session thread concurrently.
  const std::error_code code(errno, std::generic_category());
  return Status::Error(std::string(what) + ": " + code.message());
}

}  // namespace

Status Socket::SendAll(const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a disconnected peer must surface as a status the
    // serving loop can react to (cancel the session), not as SIGPIPE.
    const ssize_t sent = ::send(fd_, cursor, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    cursor += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return Status::Ok();
}

Status Socket::RecvAll(void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t got = ::recv(fd_, cursor + received, size - received, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (got == 0) {
      // Clean EOF at a message boundary is the peer hanging up; inside a
      // buffer it is a truncated stream. Callers branch on the code.
      return received == 0
                 ? Status::NotFound("connection closed")
                 : Status::Error("connection closed mid-message");
    }
    received += static_cast<std::size_t>(got);
  }
  return Status::Ok();
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ListenSocket> ListenSocket::Listen(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  ListenSocket listener;
  listener.fd_.store(fd);

  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen");

  // Report the ephemeral port the kernel picked for port 0.
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_size) !=
      0) {
    return ErrnoStatus("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> ListenSocket::Accept() {
  while (true) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return Status::Cancelled("the listener was closed");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      // Frames are small and latency-sensitive; don't let Nagle batch
      // a final frame behind a member batch.
      const int enable = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) {
      // The listener was closed under us: the shutdown path.
      return Status::Cancelled("the listener was closed");
    }
    return ErrnoStatus("accept");
  }
}

void ListenSocket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() before close(): closing a listening descriptor does not
    // reliably wake a thread blocked in accept() on Linux; shutting it
    // down fails the accept with EINVAL, which Accept maps to kCancelled.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host address '" + host +
                                   "' (dotted-quad IPv4 or 'localhost')");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket socket(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    return ErrnoStatus("connect");
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return socket;
}

}  // namespace whyprov::util
