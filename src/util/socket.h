#ifndef WHYPROV_UTIL_SOCKET_H_
#define WHYPROV_UTIL_SOCKET_H_

// Thin RAII wrappers over POSIX TCP sockets — just enough plumbing for
// the network serving tier (src/net/): a connected stream socket with
// whole-buffer send/receive, a listening socket with ephemeral-port
// support, and a client-side connect. All errors surface as util::Status
// (no exceptions, no errno spelunking at call sites); writes use
// MSG_NOSIGNAL so a peer disconnect is an EPIPE status, never a SIGPIPE.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace whyprov::util {

/// A connected TCP stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole buffer (looping over short writes). A closed or
  /// reset peer returns an error status — the serving tier's disconnect
  /// signal on the write side.
  Status SendAll(const void* data, std::size_t size);

  /// Receives exactly `size` bytes (looping over short reads). A clean
  /// EOF before any byte reports kNotFound("connection closed"); a mid-
  /// buffer EOF or socket error reports kUnknown.
  Status RecvAll(void* data, std::size_t size);

  /// Shuts down the write side (the peer's next read sees EOF) without
  /// closing the read side — the polite half of a client disconnect.
  void ShutdownWrite();

  /// Shuts down both directions without closing the descriptor: a thread
  /// blocked in RecvAll on this socket wakes with EOF. The teardown
  /// signal for a session whose reader another thread must unblock
  /// (close() alone does not reliably wake a blocked recv, and would
  /// race the descriptor away under the reader).
  void ShutdownBoth();

  /// Closes the descriptor now (idempotent; also run by the destructor).
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (the serving tier is
/// loopback-first; put a real front end or a tunnel in front for anything
/// else). Move-only; closes on destruction.
/// Close() may race with a blocked Accept() on another thread (that is
/// the shutdown path), so the descriptor is atomic.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {
    other.port_ = 0;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
      port_ = other.port_;
      other.port_ = 0;
    }
    return *this;
  }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens on `port` (0 = pick an ephemeral port; the chosen
  /// one is reported by port()).
  static Result<ListenSocket> Listen(std::uint16_t port, int backlog = 64);

  /// Accepts one connection (blocking). kCancelled once Close() ran —
  /// the server's shutdown path closes the listener to unblock the
  /// accept loop.
  Result<Socket> Accept();

  bool valid() const { return fd_.load() >= 0; }
  std::uint16_t port() const { return port_; }

  /// Closes the listener; a blocked Accept returns kCancelled.
  void Close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Connects to `host:port` (host as dotted-quad or "localhost").
Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port);

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_SOCKET_H_
