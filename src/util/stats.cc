#include "util/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace whyprov::util {

namespace {

// Linear-interpolation quantile on a sorted vector.
double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary SampleSet::Summarize() const {
  Summary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = Quantile(sorted, 0.25);
  s.median = Quantile(sorted, 0.50);
  s.q3 = Quantile(sorted, 0.75);
  s.total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  s.mean = s.total / static_cast<double>(s.count);
  return s;
}

std::string FormatSummaryRow(const std::string& label, const Summary& summary,
                             const std::string& unit) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%-28s n=%-7zu min=%-10.4g q1=%-10.4g med=%-10.4g "
                "q3=%-10.4g max=%-10.4g %s",
                label.c_str(), summary.count, summary.min, summary.q1,
                summary.median, summary.q3, summary.max, unit.c_str());
  return std::string(buffer);
}

}  // namespace whyprov::util
