#ifndef WHYPROV_UTIL_STATS_H_
#define WHYPROV_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace whyprov::util {

/// Five-number summary (min, first quartile, median, third quartile, max)
/// plus mean and count — the statistics behind the paper's box plots
/// (Figures 2 and 4).
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  double total = 0;
};

/// Collects samples and produces a `Summary`.
class SampleSet {
 public:
  /// Adds one sample.
  void Add(double value) { samples_.push_back(value); }

  /// Number of samples collected so far.
  std::size_t size() const { return samples_.size(); }

  /// Computes the five-number summary. Sorts an internal copy; O(n log n).
  Summary Summarize() const;

  /// Read-only access to the raw samples.
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Renders a summary as a fixed-width table row, e.g. for bench output.
std::string FormatSummaryRow(const std::string& label, const Summary& summary,
                             const std::string& unit);

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_STATS_H_
