#include "util/status.h"

namespace whyprov::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kUnknown:
      return "UNKNOWN";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace whyprov::util
