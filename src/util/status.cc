#include "util/status.h"

// Status and Result are header-only; this translation unit anchors the
// library target.
