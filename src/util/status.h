#ifndef WHYPROV_UTIL_STATUS_H_
#define WHYPROV_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace whyprov::util {

/// Machine-readable error categories, so callers can branch on the kind of
/// failure instead of string-matching messages.
enum class StatusCode {
  kOk = 0,
  kUnknown,            ///< unclassified error (the legacy default)
  kInvalidArgument,    ///< the caller passed something malformed
  kNotFound,           ///< a named entity does not exist
  kParseError,         ///< program/database/fact text failed to parse
  kResourceExhausted,  ///< an explicit budget or limit was exceeded
  kCancelled,          ///< the caller cancelled the operation
  kDeadlineExceeded,   ///< the operation's deadline passed before it finished
};

/// Human-readable name of a code, e.g. "NOT_FOUND".
std::string_view StatusCodeName(StatusCode code);

/// Lightweight error-handling primitive (the project builds without
/// exceptions in its public API). A `Status` is either OK or carries an
/// error code plus a human-readable message.
///
/// [[nodiscard]]: a dropped Status is a swallowed error, so every
/// function returning one must have its result inspected (or explicitly
/// discarded with a (void) cast at the handful of sites where failure
/// is genuinely irrelevant).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  /// Returns an error status carrying `message` (code kUnknown).
  static Status Error(std::string message) {
    return Error(StatusCode::kUnknown, std::move(message));
  }

  /// Returns an error status with an explicit code. Passing kOk is a bug;
  /// it is coerced to kUnknown so the error-vs-ok invariant holds even in
  /// NDEBUG builds where the assert is compiled out.
  static Status Error(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk && "error status requires an error code");
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kUnknown : code;
    s.message_ = std::move(message);
    return s;
  }

  /// Per-code convenience constructors.
  static Status InvalidArgument(std::string message) {
    return Error(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Error(StatusCode::kNotFound, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Error(StatusCode::kParseError, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Error(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Error(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Error(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category; kOk when OK.
  StatusCode code() const { return code_; }

  /// The error message; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_.has_value() ? *message_ : kEmpty;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::optional<std::string> message_;
};

/// A value-or-error wrapper: either holds a `T` or an error `Status`.
/// Use `ok()` to discriminate; accessing `value()` on an error aborts in
/// debug builds. [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result.
  // NOLINTNEXTLINE(runtime/explicit): implicit to allow `return value;`
  Result(T value) : value_(std::move(value)) {}

  /// Constructs a failed result.
  // NOLINTNEXTLINE(runtime/explicit): implicit to allow `return status;`
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The carried status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accesses the value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }

  /// Moves the value out. Requires `ok()`.
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Accesses the value. Requires `ok()`.
  T& value() & {
    assert(ok());
    return *value_;
  }

  /// The value, or `fallback` converted to T when this is an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

  /// Move-out flavour of value_or.
  template <typename U>
  T value_or(U&& fallback) && {
    return ok() ? std::move(*value_)
                : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_STATUS_H_
