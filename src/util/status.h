#ifndef WHYPROV_UTIL_STATUS_H_
#define WHYPROV_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace whyprov::util {

/// Lightweight error-handling primitive (the project builds without
/// exceptions in its public API). A `Status` is either OK or carries a
/// human-readable error message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  /// Returns an error status carrying `message`.
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  /// True iff this status represents success.
  bool ok() const { return !message_.has_value(); }

  /// The error message; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_.has_value() ? *message_ : kEmpty;
  }

 private:
  std::optional<std::string> message_;
};

/// A value-or-error wrapper: either holds a `T` or an error `Status`.
/// Use `ok()` to discriminate; accessing `value()` on an error aborts in
/// debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit to allow `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result (implicit to allow `return status;`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The carried status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accesses the value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }

  /// Moves the value out. Requires `ok()`.
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Accesses the value. Requires `ok()`.
  T& value() & {
    assert(ok());
    return *value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_STATUS_H_
