#ifndef WHYPROV_UTIL_THREAD_ANNOTATIONS_H_
#define WHYPROV_UTIL_THREAD_ANNOTATIONS_H_

// Macros for Clang's thread-safety analysis (-Wthread-safety), after
// the canonical mutex.h example in the Clang documentation. On Clang
// they expand to the capability attributes; on other compilers they
// expand to nothing, so annotated code builds everywhere while CI's
// clang job (-Werror=thread-safety) proves the lock discipline at
// compile time.
//
// Vocabulary (all applied to util::Mutex and friends, see util/mutex.h):
//
//   GUARDED_BY(mu)    — field may only be read/written with mu held.
//   PT_GUARDED_BY(mu) — the pointee of this pointer is guarded by mu.
//   REQUIRES(mu)      — caller must hold mu (the `FooLocked()` helpers).
//   EXCLUDES(mu)      — caller must NOT hold mu (the function takes it).
//   ACQUIRE/RELEASE   — the function takes/releases the capability.
//   CAPABILITY        — the class is a lockable capability (Mutex).
//   SCOPED_CAPABILITY — RAII class acquiring in ctor, releasing in dtor.

#if defined(__clang__) && defined(__has_attribute)
#define WHYPROV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define WHYPROV_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

#define CAPABILITY(x) WHYPROV_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY WHYPROV_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) WHYPROV_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) WHYPROV_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  WHYPROV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  WHYPROV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  WHYPROV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  WHYPROV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  WHYPROV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  WHYPROV_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  WHYPROV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  WHYPROV_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  WHYPROV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  WHYPROV_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) WHYPROV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  WHYPROV_THREAD_ANNOTATION__(assert_capability(x))

#define RETURN_CAPABILITY(x) WHYPROV_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  WHYPROV_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // WHYPROV_UTIL_THREAD_ANNOTATIONS_H_
