#ifndef WHYPROV_UTIL_TIMER_H_
#define WHYPROV_UTIL_TIMER_H_

#include <chrono>

namespace whyprov::util {

/// A monotonic wall-clock stopwatch used by the benchmark harness and the
/// enumeration-delay instrumentation.
class Timer {
 public:
  /// Starts (or restarts) the stopwatch.
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_TIMER_H_
