#include "util/wire_format.h"

#include <cstring>
#include <utility>

namespace whyprov::util {

// --- WireWriter ------------------------------------------------------------

void WireWriter::PutU8(std::uint8_t value) {
  buffer_.push_back(static_cast<char>(value));
}

void WireWriter::PutU32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void WireWriter::PutU64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void WireWriter::PutF64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view value) {
  PutU32(static_cast<std::uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

void WireWriter::PutStringList(const std::vector<std::string>& values) {
  PutU32(static_cast<std::uint32_t>(values.size()));
  for (const auto& value : values) PutString(value);
}

// --- WireReader ------------------------------------------------------------

bool WireReader::GetU8(std::uint8_t* value) {
  if (!ok_ || size_ - position_ < 1) return ok_ = false;
  *value = data_[position_++];
  return true;
}

bool WireReader::GetU32(std::uint32_t* value) {
  if (!ok_ || size_ - position_ < 4) return ok_ = false;
  std::uint32_t out = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    out |= static_cast<std::uint32_t>(data_[position_++]) << shift;
  }
  *value = out;
  return true;
}

bool WireReader::GetU64(std::uint64_t* value) {
  if (!ok_ || size_ - position_ < 8) return ok_ = false;
  std::uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    out |= static_cast<std::uint64_t>(data_[position_++]) << shift;
  }
  *value = out;
  return true;
}

bool WireReader::GetF64(double* value) {
  std::uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

bool WireReader::GetString(std::string* value) {
  std::uint32_t length = 0;
  if (!GetU32(&length)) return false;
  if (size_ - position_ < length) return ok_ = false;
  value->assign(reinterpret_cast<const char*>(data_ + position_), length);
  position_ += length;
  return true;
}

bool WireReader::GetStringList(std::vector<std::string>* values) {
  std::uint32_t count = 0;
  if (!GetU32(&count)) return false;
  // Each element costs at least its 4-byte length prefix, so a count
  // larger than the remaining bytes / 4 cannot be honest — reject it
  // before reserving memory for it.
  if (count > (size_ - position_) / 4) return ok_ = false;
  values->clear();
  values->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string value;
    if (!GetString(&value)) return false;
    values->push_back(std::move(value));
  }
  return true;
}

}  // namespace whyprov::util
