#ifndef WHYPROV_UTIL_WIRE_FORMAT_H_
#define WHYPROV_UTIL_WIRE_FORMAT_H_

// The little-endian encode/decode primitives shared by every binary
// format in the tree: the network wire protocol (net/wire.h) and the
// on-disk WAL / checkpoint formats (src/storage/). Both layers frame
// payloads built from exactly these primitives, so there is a single
// definition of how an integer, string, or list is laid out in bytes.
//
// Primitives: unsigned integers are little-endian; f64 is the IEEE-754
// bit pattern as a u64; a string is u32 length + raw bytes; a list is
// u32 count + elements. docs/WIRE_PROTOCOL.md and
// docs/STORAGE_FORMAT.md are the normative specs.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace whyprov::util {

/// Append-only little-endian encoder for one payload.
class WireWriter {
 public:
  void PutU8(std::uint8_t value);
  void PutU32(std::uint32_t value);
  void PutU64(std::uint64_t value);
  void PutF64(double value);
  void PutString(std::string_view value);
  void PutStringList(const std::vector<std::string>& values);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked decoder over one payload. Every getter returns
/// false (and poisons the reader) on underrun; check ok() — or the
/// individual returns — before trusting the outputs. Decoding never
/// reads past `size`, so a truncated payload fails cleanly.
class WireReader {
 public:
  WireReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit WireReader(std::string_view payload)
      : WireReader(payload.data(), payload.size()) {}

  bool GetU8(std::uint8_t* value);
  bool GetU32(std::uint32_t* value);
  bool GetU64(std::uint64_t* value);
  bool GetF64(double* value);
  bool GetString(std::string* value);
  bool GetStringList(std::vector<std::string>* values);

  bool ok() const { return ok_; }
  /// True iff every byte was consumed — trailing garbage is an error.
  bool exhausted() const { return ok_ && position_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace whyprov::util

#endif  // WHYPROV_UTIL_WIRE_FORMAT_H_
