#ifndef WHYPROV_WHYPROV_H_
#define WHYPROV_WHYPROV_H_

/// Umbrella header: the public API of the why-provenance engine.
///
/// Everything an application needs is reachable from here — examples,
/// benchmarks, and external users include only this header (plus
/// scenarios/ for the generated workloads) and talk to `whyprov::Engine`:
///
///   auto engine = whyprov::Engine::FromText(program, database, "path");
///   auto enumeration =
///       engine.value().Enumerate({.target_text = "path(a, c)"});
///   for (const auto& member : enumeration.value()) { ... }
///
/// See README.md for a quickstart and the backend-registration recipe.

// The serving front door: Service (submission-based async API with
// admission control), Ticket, streaming MemberSink/MemberStream, and the
// unified Request/Response pair with deadlines and cancellation.
#include "service/service.h"

// Sharded serving: ShardMap partitioning policies (by-predicate with
// dependency-closure delta fan-out, fact-range over lockstep replicas)
// and ShardedService — N engines behind the Service API unchanged.
#include "shard/shard_map.h"
#include "shard/sharded_service.h"

// The facade: Engine, EngineOptions, the request/response structs, the
// Enumeration handle, PreparedQuery (compile-once/execute-many plans), the
// plan cache, and the batch serving API.
#include "engine/engine.h"
#include "engine/plan_cache.h"

// Datalog surface types reachable from Engine results (facts, programs,
// symbol tables, pretty-printing).
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/parser.h"
#include "datalog/partition.h"
#include "datalog/program.h"

// Provenance vocabulary: proof trees/DAGs, tree classes, families, the
// Graphviz export, and the non-recursive FO rewriting.
#include "provenance/dot_export.h"
#include "provenance/fo_rewriting.h"
#include "provenance/proof_dag.h"
#include "provenance/proof_tree.h"

// Advanced/diagnostic surface: direct access to the downward closure, the
// CNF encoding, shareable query plans, and the SAT backend registry.
#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "provenance/query_plan.h"
#include "sat/cnf_formula.h"
#include "sat/solver_factory.h"
#include "sat/solver_interface.h"

// Error handling, cancellation/deadlines, the worker-pool executor,
// timing, and deterministic randomness.
#include "util/cancellation.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

#endif  // WHYPROV_WHYPROV_H_
