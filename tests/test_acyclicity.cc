// Tests for the two CNF acyclicity encodings: both must accept exactly the
// acyclic arc selections.

#include <vector>

#include <gtest/gtest.h>

#include "provenance/acyclicity.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace whyprov::provenance {
namespace {

struct Skeleton {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> arcs;
};

/// Checks whether the arc subset selected by `mask` is acyclic (DFS).
bool SelectionIsAcyclic(const Skeleton& skeleton, std::uint32_t mask) {
  std::vector<std::vector<int>> adj(skeleton.num_nodes);
  for (std::size_t i = 0; i < skeleton.arcs.size(); ++i) {
    if (mask & (1u << i)) {
      adj[skeleton.arcs[i].first].push_back(skeleton.arcs[i].second);
    }
  }
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> colour(skeleton.num_nodes, kWhite);
  bool acyclic = true;
  auto dfs = [&](auto&& self, int v) -> void {
    colour[v] = kGrey;
    for (int w : adj[v]) {
      if (colour[w] == kGrey) acyclic = false;
      if (!acyclic) return;
      if (colour[w] == kWhite) self(self, w);
    }
    colour[v] = kBlack;
  };
  for (int v = 0; v < skeleton.num_nodes && acyclic; ++v) {
    if (colour[v] == kWhite) dfs(dfs, v);
  }
  return acyclic;
}

/// For every subset of skeleton arcs, the encoding (with arcs forced via
/// assumptions) must be satisfiable iff the subset is acyclic.
void CheckEncodingComplete(AcyclicityEncoding kind,
                           const Skeleton& skeleton) {
  ASSERT_LE(skeleton.arcs.size(), 16u);
  sat::Solver solver;
  std::vector<Arc> arcs;
  for (const auto& [from, to] : skeleton.arcs) {
    const sat::Var v = solver.NewVar();
    arcs.push_back(Arc{from, to, sat::Lit::Make(v, false)});
  }
  EncodeAcyclicity(kind, skeleton.num_nodes, arcs, solver);
  for (std::uint32_t mask = 0; mask < (1u << skeleton.arcs.size()); ++mask) {
    std::vector<sat::Lit> assumptions;
    for (std::size_t i = 0; i < skeleton.arcs.size(); ++i) {
      assumptions.push_back(sat::Lit::Make(arcs[i].lit.var(),
                                           /*negated=*/!(mask & (1u << i))));
    }
    const bool expected = SelectionIsAcyclic(skeleton, mask);
    const bool actual = solver.Solve(assumptions) == sat::SolveResult::kSat;
    ASSERT_EQ(actual, expected)
        << AcyclicityEncodingName(kind) << " mask=" << mask;
  }
}

class AcyclicityTest : public ::testing::TestWithParam<AcyclicityEncoding> {};

TEST_P(AcyclicityTest, TriangleAllSubsets) {
  Skeleton s;
  s.num_nodes = 3;
  s.arcs = {{0, 1}, {1, 2}, {2, 0}, {1, 0}};
  CheckEncodingComplete(GetParam(), s);
}

TEST_P(AcyclicityTest, SelfLoopIsAlwaysCyclic) {
  Skeleton s;
  s.num_nodes = 2;
  s.arcs = {{0, 0}, {0, 1}};
  CheckEncodingComplete(GetParam(), s);
}

TEST_P(AcyclicityTest, TwoCycleAndChord) {
  Skeleton s;
  s.num_nodes = 4;
  s.arcs = {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 1}, {0, 3}};
  CheckEncodingComplete(GetParam(), s);
}

TEST_P(AcyclicityTest, ParallelArcsAreMerged) {
  // Two arc variables on the same ordered pair plus a back arc.
  sat::Solver solver;
  const sat::Var z1 = solver.NewVar();
  const sat::Var z2 = solver.NewVar();
  const sat::Var back = solver.NewVar();
  std::vector<Arc> arcs = {
      Arc{0, 1, sat::Lit::Make(z1, false)},
      Arc{0, 1, sat::Lit::Make(z2, false)},
      Arc{1, 0, sat::Lit::Make(back, false)},
  };
  EncodeAcyclicity(GetParam(), 2, arcs, solver);
  // Selecting the second parallel arc plus the back arc is a cycle.
  EXPECT_EQ(solver.Solve({sat::Lit::Make(z1, true),
                          sat::Lit::Make(z2, false),
                          sat::Lit::Make(back, false)}),
            sat::SolveResult::kUnsat);
  // Either direction alone is fine.
  EXPECT_EQ(solver.Solve({sat::Lit::Make(z2, false),
                          sat::Lit::Make(back, true)}),
            sat::SolveResult::kSat);
}

INSTANTIATE_TEST_SUITE_P(
    BothEncodings, AcyclicityTest,
    ::testing::Values(AcyclicityEncoding::kTransitiveClosure,
                      AcyclicityEncoding::kVertexElimination),
    [](const ::testing::TestParamInfo<AcyclicityEncoding>& info) {
      return info.param == AcyclicityEncoding::kTransitiveClosure
                 ? "TransitiveClosure"
                 : "VertexElimination";
    });

// Property test: on random skeletons both encodings agree with the DFS
// ground truth for every arc subset.
class RandomSkeletonTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSkeletonTest, BothEncodingsMatchGroundTruth) {
  util::Rng rng(0xacdc + GetParam());
  Skeleton s;
  s.num_nodes = 5;
  const int num_arcs = 8;
  for (int i = 0; i < num_arcs; ++i) {
    const int from = static_cast<int>(rng.UniformInt(s.num_nodes));
    const int to = static_cast<int>(rng.UniformInt(s.num_nodes));
    s.arcs.emplace_back(from, to);
  }
  CheckEncodingComplete(AcyclicityEncoding::kTransitiveClosure, s);
  CheckEncodingComplete(AcyclicityEncoding::kVertexElimination, s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSkeletonTest, ::testing::Range(0, 10));

TEST(AcyclicityStatsTest, VertexEliminationUsesFewerVariablesOnSparseGraphs) {
  // A long path: transitive closure needs O(n^2) variables, vertex
  // elimination O(n).
  const int n = 40;
  Skeleton s;
  s.num_nodes = n;
  for (int i = 0; i + 1 < n; ++i) s.arcs.emplace_back(i, i + 1);

  auto encode = [&](AcyclicityEncoding kind) {
    sat::Solver solver;
    std::vector<Arc> arcs;
    for (const auto& [from, to] : s.arcs) {
      arcs.push_back(Arc{from, to, sat::Lit::Make(solver.NewVar(), false)});
    }
    return EncodeAcyclicity(kind, n, arcs, solver);
  };
  const AcyclicityStats tc = encode(AcyclicityEncoding::kTransitiveClosure);
  const AcyclicityStats ve = encode(AcyclicityEncoding::kVertexElimination);
  EXPECT_LT(ve.auxiliary_variables * 10, tc.auxiliary_variables)
      << "vertex elimination should be far cheaper on a path";
}

}  // namespace
}  // namespace whyprov::provenance
