// Tests for the all-at-once baseline (the Figure 5 comparator).

#include <gtest/gtest.h>

#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "provenance/enumerator.h"
#include "tests/workspace.h"
#include "util/rng.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::FamilyToStrings;
using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

TEST(BaselineTest, ChainHasSingleExplanation) {
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              "edge(a, b). edge(b, c).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  auto family = ComputeWhyAllAtOnce(w.program, model,
                                    *model.Find(w.ParseFact("path(a, c)")));
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(FamilyToStrings(family.value(), *w.symbols),
            (std::set<std::string>{"{edge(a, b), edge(b, c)}"}));
}

TEST(BaselineTest, DiamondHasTwoExplanations) {
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              R"(
    edge(a, b1). edge(b1, c). edge(a, b2). edge(b2, c).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  auto family = ComputeWhyAllAtOnce(w.program, model,
                                    *model.Find(w.ParseFact("path(a, c)")));
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family.value().size(), 2u);
}

TEST(BaselineTest, UnderivableTargetHasEmptyFamily) {
  Workspace w = MakeWorkspace("p(X) :- e(X).", "e(a).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  auto family =
      ComputeWhyAllAtOnce(w.program, model, dl::kInvalidFact);
  ASSERT_TRUE(family.ok());
  EXPECT_TRUE(family.value().empty());
}

TEST(BaselineTest, DatabaseFactExplainsItself) {
  Workspace w = MakeWorkspace("p(X) :- e(X).", "e(a).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  auto family = ComputeWhyAllAtOnce(w.program, model,
                                    *model.Find(w.ParseFact("e(a)")));
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(FamilyToStrings(family.value(), *w.symbols),
            (std::set<std::string>{"{e(a)}"}));
}

TEST(BaselineTest, BudgetOverflowIsReportedNotHung) {
  // A program whose why-provenance family grows combinatorially: n
  // independent 2-way choices per chain position.
  std::string facts;
  const int layers = 14;
  for (int i = 0; i < layers; ++i) {
    facts += "e(a" + std::to_string(i) + ", a" + std::to_string(i + 1) + ").";
    facts += "f(a" + std::to_string(i) + ", a" + std::to_string(i + 1) + ").";
  }
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- e(X, Y).
    path(X, Y) :- f(X, Y).
    path(X, Y) :- e(X, Z), path(Z, Y).
    path(X, Y) :- f(X, Z), path(Z, Y).
  )",
                              facts.c_str());
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  BaselineLimits limits;
  limits.max_family_size = 256;  // tiny budget: must trip, not hang
  auto family = ComputeWhyAllAtOnce(
      w.program, model,
      *model.Find(w.ParseFact("path(a0, a" + std::to_string(layers) + ")")),
      limits);
  EXPECT_FALSE(family.ok());
}

// Property: on the paper's non-linear program, whyUN (SAT enumeration) is
// always a subset of why (baseline), and the baseline family is closed
// under the "supports of proof trees" semantics checked via membership of
// each whyUN member.
class BaselineVsSatTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineVsSatTest, WhyUnIsSubsetOfWhy) {
  util::Rng rng(0xdead + GetParam());
  std::string facts;
  const int domain = 4;
  facts += "s(n" + std::to_string(rng.UniformInt(domain)) + ").";
  for (int i = 0; i < 7; ++i) {
    facts += "t(n" + std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ").";
  }
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              facts.c_str());
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::PredicateId a = w.symbols->FindPredicate("a").value();
  for (dl::FactId target : model.Relation(a)) {
    auto why = ComputeWhyAllAtOnce(w.program, model, target);
    ASSERT_TRUE(why.ok());
    WhyProvenanceEnumerator enumerator(w.program, model, target);
    for (auto member = enumerator.Next(); member.has_value();
         member = enumerator.Next()) {
      EXPECT_TRUE(why.value().contains(*member))
          << "whyUN member missing from why";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineVsSatTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace whyprov::provenance
