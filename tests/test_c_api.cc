// Tests of the flat C ABI (net/whyprov_c.h): the create/submit/wait/
// cancel/stream-next/destroy lifecycle, status-code mirroring, both
// enumeration modes (materialised index walk and streaming pull with
// backpressure), decide/explain/delta payloads, deadline propagation,
// and the sharded configuration behind the same handle type. Everything
// here goes through the extern "C" surface only — what a foreign-
// language binding would see.

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/whyprov_c.h"

namespace {

constexpr const char* kDiamondProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDiamondDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(a, m3). edge(m3, b).
  edge(a, m4). edge(m4, b).
  edge(a, m5). edge(m5, b).
  edge(a, m6). edge(m6, b).
)";
constexpr std::size_t kDiamondMembers = 6;
constexpr const char* kTarget = "path(a, b)";

/// RAII over the C handle so a failing ASSERT cannot leak the service.
struct ServiceHandle {
  whyprov_service* service = nullptr;
  char error[256] = {0};

  explicit ServiceHandle(const whyprov_options* options = nullptr,
                         const char* program = kDiamondProgram,
                         const char* database = kDiamondDatabase,
                         const char* answer = "path") {
    status = whyprov_service_create(program, database, answer, options,
                                    &service, error, sizeof(error));
  }
  ~ServiceHandle() { whyprov_service_destroy(service); }
  ServiceHandle(const ServiceHandle&) = delete;
  ServiceHandle& operator=(const ServiceHandle&) = delete;

  whyprov_status status = WHYPROV_OK;
};

/// Pulls every member through whyprov_ticket_next_member, rendering each
/// as one comma-joined string (the pull loop is identical for streaming
/// and materialised tickets — that symmetry is itself under test).
std::vector<std::string> PullAll(whyprov_ticket* ticket) {
  std::vector<std::string> members;
  const char* const* facts = nullptr;
  std::size_t num_facts = 0;
  while (whyprov_ticket_next_member(ticket, &facts, &num_facts) != 0) {
    std::string member;
    for (std::size_t i = 0; i < num_facts; ++i) {
      if (i > 0) member += ", ";
      member += facts[i];
    }
    members.push_back(std::move(member));
  }
  return members;
}

// --- lifecycle and error paths -------------------------------------------

TEST(CApiCreateTest, StatusNamesAreStable) {
  EXPECT_STREQ(whyprov_status_name(WHYPROV_OK), "OK");
  EXPECT_STREQ(whyprov_status_name(WHYPROV_PARSE_ERROR), "PARSE_ERROR");
  EXPECT_STREQ(whyprov_status_name(WHYPROV_CANCELLED), "CANCELLED");
  EXPECT_STREQ(whyprov_status_name(WHYPROV_DEADLINE_EXCEEDED),
               "DEADLINE_EXCEEDED");
}

TEST(CApiCreateTest, CreateAndDestroyRoundTrips) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;
  ASSERT_NE(handle.service, nullptr);
  whyprov_stats stats;
  whyprov_service_stats(handle.service, &stats);
  EXPECT_EQ(stats.num_shards, 1u);
  EXPECT_EQ(stats.model_version, 0u);
}

TEST(CApiCreateTest, BadProgramFailsWithMessage) {
  ServiceHandle handle(nullptr, "p(X) :- (((", "e(a).", "p");
  EXPECT_NE(handle.status, WHYPROV_OK);
  EXPECT_EQ(handle.service, nullptr);
  EXPECT_GT(std::strlen(handle.error), 0u);
}

TEST(CApiCreateTest, UnknownAnswerPredicateIsNotFound) {
  ServiceHandle handle(nullptr, kDiamondProgram, kDiamondDatabase, "nope");
  EXPECT_EQ(handle.status, WHYPROV_NOT_FOUND);
  EXPECT_EQ(handle.service, nullptr);
}

TEST(CApiCreateTest, NullArgumentsAreInvalid) {
  whyprov_service* service = nullptr;
  EXPECT_EQ(whyprov_service_create(nullptr, "e(a).", "p", nullptr, &service,
                                   nullptr, 0),
            WHYPROV_INVALID_ARGUMENT);
  EXPECT_EQ(service, nullptr);
  EXPECT_EQ(whyprov_service_create("p(X) :- e(X).", "e(a).", "p", nullptr,
                                   nullptr, nullptr, 0),
            WHYPROV_INVALID_ARGUMENT);
  // Destroying NULL handles is a no-op, not a crash.
  whyprov_service_destroy(nullptr);
  whyprov_ticket_destroy(nullptr);
}

// --- enumeration ----------------------------------------------------------

TEST(CApiEnumerateTest, MaterialisedModeListsTheWholeFamily) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;
  whyprov_ticket* ticket = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget,
                                     /*max_members=*/0,
                                     /*deadline_seconds=*/0,
                                     /*stream_capacity=*/0, &ticket),
            WHYPROV_OK);
  ASSERT_NE(ticket, nullptr);
  whyprov_ticket_wait(ticket);
  EXPECT_EQ(whyprov_ticket_done(ticket), 1);
  EXPECT_EQ(whyprov_ticket_status(ticket), WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_num_members(ticket), kDiamondMembers);
  EXPECT_EQ(whyprov_ticket_members_emitted(ticket), kDiamondMembers);
  EXPECT_EQ(whyprov_ticket_model_version(ticket), 0u);
  EXPECT_TRUE(whyprov_ticket_enumerate_flags(ticket) &
              WHYPROV_ENUM_EXHAUSTED);

  // Each member of whyUN(path(a, b)) is one parallel route: exactly two
  // edge facts, one through each midpoint.
  std::set<std::string> routes;
  for (std::size_t i = 0; i < kDiamondMembers; ++i) {
    const char* const* facts = nullptr;
    std::size_t num_facts = 0;
    ASSERT_EQ(whyprov_ticket_member(ticket, i, &facts, &num_facts), 1);
    ASSERT_EQ(num_facts, 2u);
    routes.insert(std::string(facts[0]) + " " + facts[1]);
  }
  EXPECT_EQ(routes.size(), kDiamondMembers);  // all distinct
  // An out-of-range index reports absence, not UB.
  const char* const* facts = nullptr;
  std::size_t num_facts = 0;
  EXPECT_EQ(whyprov_ticket_member(ticket, kDiamondMembers, &facts,
                                  &num_facts),
            0);
  whyprov_ticket_destroy(ticket);
}

TEST(CApiEnumerateTest, StreamingPullMatchesMaterialisedWalk) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;

  whyprov_ticket* materialised = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0, 0,
                                     /*stream_capacity=*/0, &materialised),
            WHYPROV_OK);
  const std::vector<std::string> walked = PullAll(materialised);
  EXPECT_EQ(whyprov_ticket_status(materialised), WHYPROV_OK);

  whyprov_ticket* streamed = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0, 0,
                                     /*stream_capacity=*/2, &streamed),
            WHYPROV_OK);
  const std::vector<std::string> pulled = PullAll(streamed);
  EXPECT_EQ(whyprov_ticket_status(streamed), WHYPROV_OK);

  // Same members, same order, byte for byte — and the streaming ticket
  // reports them under members_emitted, not num_members.
  EXPECT_EQ(pulled, walked);
  EXPECT_EQ(pulled.size(), kDiamondMembers);
  EXPECT_EQ(whyprov_ticket_num_members(streamed), 0u);
  EXPECT_EQ(whyprov_ticket_members_emitted(streamed), kDiamondMembers);

  whyprov_ticket_destroy(materialised);
  whyprov_ticket_destroy(streamed);
}

TEST(CApiEnumerateTest, MemberCapSetsTheFlag) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;
  whyprov_ticket* ticket = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget,
                                     /*max_members=*/2, 0, 0, &ticket),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(ticket), WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_num_members(ticket), 2u);
  const uint32_t flags = whyprov_ticket_enumerate_flags(ticket);
  EXPECT_TRUE(flags & WHYPROV_ENUM_HIT_MEMBER_CAP);
  EXPECT_FALSE(flags & WHYPROV_ENUM_EXHAUSTED);
  whyprov_ticket_destroy(ticket);
}

TEST(CApiEnumerateTest, CancelMidStreamReportsCancelled) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;
  whyprov_ticket* ticket = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0, 0,
                                     /*stream_capacity=*/1, &ticket),
            WHYPROV_OK);
  const char* const* facts = nullptr;
  std::size_t num_facts = 0;
  ASSERT_EQ(whyprov_ticket_next_member(ticket, &facts, &num_facts), 1);
  whyprov_ticket_cancel(ticket);
  // The producer observes the raised token and closes the stream; the
  // pull loop ends (possibly after the members already buffered).
  while (whyprov_ticket_next_member(ticket, &facts, &num_facts) != 0) {
  }
  EXPECT_EQ(whyprov_ticket_status(ticket), WHYPROV_CANCELLED);
  EXPECT_GT(std::strlen(whyprov_ticket_status_message(ticket)), 0u);
  whyprov_ticket_destroy(ticket);
}

TEST(CApiEnumerateTest, DeadlineExpiredInQueueIsDeadlineExceeded) {
  whyprov_options options;
  whyprov_options_init(&options);
  options.num_threads = 1;
  ServiceHandle handle(&options);
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;

  // Park the only worker: a capacity-1 streaming enumeration nobody
  // consumes blocks its producer after the first member.
  whyprov_ticket* blocker = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0, 0,
                                     /*stream_capacity=*/1, &blocker),
            WHYPROV_OK);

  // A nanosecond deadline is long gone by the time the worker frees up.
  whyprov_ticket* doomed = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0,
                                     /*deadline_seconds=*/1e-9, 0, &doomed),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_wait_for(doomed, 0.0), 0);

  // Destroying the blocker closes its stream, unblocking the worker.
  whyprov_ticket_destroy(blocker);
  EXPECT_EQ(whyprov_ticket_status(doomed), WHYPROV_DEADLINE_EXCEEDED);
  whyprov_ticket_destroy(doomed);

  whyprov_stats stats;
  whyprov_service_stats(handle.service, &stats);
  EXPECT_GE(stats.deadline_exceeded, 1u);
}

// --- decide / explain / delta ---------------------------------------------

TEST(CApiDecideTest, VerdictsForMemberAndNonMember) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;

  const char* member[] = {"edge(a, m1)", "edge(m1, b)"};
  whyprov_ticket* yes = nullptr;
  ASSERT_EQ(whyprov_submit_decide(handle.service, kTarget, member, 2,
                                  WHYPROV_TREE_UNAMBIGUOUS, 0, &yes),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(yes), WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_decision(yes), 1);
  whyprov_ticket_destroy(yes);

  // A lone edge cannot derive path(a, b): valid question, negative answer.
  whyprov_ticket* no = nullptr;
  ASSERT_EQ(whyprov_submit_decide(handle.service, kTarget, member, 1,
                                  WHYPROV_TREE_UNAMBIGUOUS, 0, &no),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(no), WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_decision(no), 0);
  whyprov_ticket_destroy(no);

  // An unparseable candidate fails at submission — no ticket to leak.
  const char* garbage[] = {"edge(((("};
  whyprov_ticket* rejected = nullptr;
  EXPECT_EQ(whyprov_submit_decide(handle.service, kTarget, garbage, 1,
                                  WHYPROV_TREE_UNAMBIGUOUS, 0, &rejected),
            WHYPROV_PARSE_ERROR);
  EXPECT_EQ(rejected, nullptr);
}

TEST(CApiExplainTest, ExplanationCarriesMemberAndTree) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;
  whyprov_ticket* ticket = nullptr;
  ASSERT_EQ(whyprov_submit_explain(handle.service, kTarget,
                                   /*member_index=*/0, 0, &ticket),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(ticket), WHYPROV_OK);
  const char* const* facts = nullptr;
  std::size_t num_facts = 0;
  const char* tree = nullptr;
  ASSERT_EQ(whyprov_ticket_explanation(ticket, &facts, &num_facts, &tree),
            1);
  EXPECT_EQ(num_facts, 2u);  // one route: two edges
  ASSERT_NE(tree, nullptr);
  EXPECT_NE(std::string(tree).find("path(a, b)"), std::string::npos);
  whyprov_ticket_destroy(ticket);
}

TEST(CApiDeltaTest, DeltaAdvancesTheVersionAndReportsStats) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;

  const char* removed[] = {"edge(a, m1)"};
  whyprov_ticket* delta = nullptr;
  ASSERT_EQ(whyprov_submit_delta(handle.service, nullptr, 0, removed, 1, 0,
                                 &delta),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(delta), WHYPROV_OK);
  whyprov_delta_stats stats;
  ASSERT_EQ(whyprov_ticket_delta_stats(delta, &stats), 1);
  EXPECT_EQ(stats.model_version, 1u);
  EXPECT_EQ(stats.facts_removed, 1u);
  EXPECT_EQ(whyprov_ticket_model_version(delta), 1u);
  whyprov_ticket_destroy(delta);

  // The family shrank by the removed route, and reads see version 1.
  whyprov_ticket* after = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0, 0, 0,
                                     &after),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(after), WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_num_members(after), kDiamondMembers - 1);
  EXPECT_EQ(whyprov_ticket_model_version(after), 1u);
  whyprov_ticket_destroy(after);

  whyprov_stats service_stats;
  whyprov_service_stats(handle.service, &service_stats);
  EXPECT_EQ(service_stats.model_version, 1u);
}

// --- the sharded configuration --------------------------------------------

TEST(CApiShardedTest, NumShardsServesAShardedServiceBehindTheSameAbi) {
  whyprov_options options;
  whyprov_options_init(&options);
  options.num_shards = 2;
  ServiceHandle handle(&options);
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;

  whyprov_stats stats;
  whyprov_service_stats(handle.service, &stats);
  EXPECT_EQ(stats.num_shards, 2u);

  whyprov_ticket* ticket = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 0, 0, 0,
                                     &ticket),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_status(ticket), WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_num_members(ticket), kDiamondMembers);
  whyprov_ticket_destroy(ticket);

  // Decide parses candidates through the shards' shared symbol table.
  const char* member[] = {"edge(a, m2)", "edge(m2, b)"};
  whyprov_ticket* decide = nullptr;
  ASSERT_EQ(whyprov_submit_decide(handle.service, kTarget, member, 2,
                                  WHYPROV_TREE_UNAMBIGUOUS, 0, &decide),
            WHYPROV_OK);
  EXPECT_EQ(whyprov_ticket_decision(decide), 1);
  whyprov_ticket_destroy(decide);
}

TEST(CApiStatsTest, CountersTrackTheServedRequests) {
  ServiceHandle handle;
  ASSERT_EQ(handle.status, WHYPROV_OK) << handle.error;
  for (int i = 0; i < 3; ++i) {
    whyprov_ticket* ticket = nullptr;
    ASSERT_EQ(whyprov_submit_enumerate(handle.service, kTarget, 1, 0, 0,
                                       &ticket),
              WHYPROV_OK);
    whyprov_ticket_wait(ticket);
    whyprov_ticket_destroy(ticket);
  }
  whyprov_stats stats;
  whyprov_service_stats(handle.service, &stats);
  EXPECT_GE(stats.submitted, 3u);
  EXPECT_GE(stats.succeeded, 3u);
  EXPECT_GE(stats.members_delivered, 3u);
}

}  // namespace
