// Direct unit tests for the CNF encoder: variable layout and the
// semantics of phi_graph, phi_root, and phi_proof, probed through the
// solver with assumptions.

#include <gtest/gtest.h>

#include "provenance/cnf_encoder.h"
#include "provenance/downward_closure.h"
#include "sat/solver.h"
#include "tests/workspace.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

// The solver is non-movable, so the fixture is a test base class instead
// of a value.
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture()
      : w(MakeWorkspace(R"(
          path(X, Y) :- edge(X, Y).
          path(X, Y) :- edge(X, Z), path(Z, Y).
        )",
                        "edge(a, b). edge(b, c). edge(a, c).")),
        model(dl::Evaluator::Evaluate(w.program, w.database)),
        closure(DownwardClosure::Build(
            w.program, model, *model.Find(w.ParseFact("path(a, c)")))) {
    encoding = CnfEncoder::Encode(closure, solver);
  }

  Workspace w;
  dl::Model model;
  DownwardClosure closure;
  sat::Solver solver;
  Encoding encoding;
};

TEST_F(ChainFixture, VariableLayoutMatchesClosure) {
  EXPECT_EQ(encoding.node_vars.size(), closure.nodes().size());
  EXPECT_EQ(encoding.hyperedge_vars.size(), closure.edges().size());
  EXPECT_FALSE(encoding.trivially_unsat);
  EXPECT_EQ(encoding.database_leaves.size(),
            closure.DatabaseLeaves().size());
  // Every arc's endpoints are closure nodes.
  for (const auto& z : encoding.edge_vars) {
    EXPECT_TRUE(closure.ContainsNode(z.from));
    EXPECT_TRUE(closure.ContainsNode(z.to));
  }
}

TEST_F(ChainFixture, RootIsForcedPresent) {
  // Asserting the root absent must be unsatisfiable (phi_root).
  const sat::Var root_var = encoding.node_vars.at(closure.target());
  EXPECT_EQ(solver.Solve({sat::Lit::Make(root_var, true)}),
            sat::SolveResult::kUnsat);
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kSat);
}

TEST_F(ChainFixture, PresentNodeNeedsIncomingArc) {
  // Force a non-root fact present but all arcs into it false: UNSAT.
  const dl::FactId path_bc = *model.Find(w.ParseFact("path(b, c)"));
  std::vector<sat::Lit> assumptions;
  assumptions.push_back(
      sat::Lit::Make(encoding.node_vars.at(path_bc), false));
  for (const auto& z : encoding.edge_vars) {
    if (z.to == path_bc) {
      assumptions.push_back(sat::Lit::Make(z.var, true));
    }
  }
  EXPECT_EQ(solver.Solve(assumptions), sat::SolveResult::kUnsat);
}

TEST_F(ChainFixture, SelectedHyperedgeForcesItsArcs) {
  // For every hyperedge: y_e & (head present) implies all its body arcs.
  for (std::size_t e = 0; e < closure.edges().size(); ++e) {
    const auto& edge = closure.edges()[e];
    for (dl::FactId body : edge.body) {
      sat::Var z_var = 0;
      bool found = false;
      for (const auto& z : encoding.edge_vars) {
        if (z.from == edge.head && z.to == body) {
          z_var = z.var;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
      // y_e true and z false: unsatisfiable.
      EXPECT_EQ(
          solver.Solve({sat::Lit::Make(encoding.hyperedge_vars[e], false),
                          sat::Lit::Make(z_var, true)}),
          sat::SolveResult::kUnsat);
    }
  }
}

TEST_F(ChainFixture, TwoHyperedgesOfOneHeadAreMutuallyExclusive) {
  // path(a, c) has two derivations in this database: the direct edge and
  // the two-hop path. Their y variables cannot both hold (the paper's
  // Remark after the phi_proof definition).
  const auto& edges = closure.EdgesWithHead(closure.target());
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(
      solver.Solve(
          {sat::Lit::Make(encoding.hyperedge_vars[edges[0]], false),
           sat::Lit::Make(encoding.hyperedge_vars[edges[1]], false)}),
      sat::SolveResult::kUnsat);
}

TEST(CnfEncoderTest, UnderivableTargetIsTriviallyUnsat) {
  Workspace w = MakeWorkspace("p(X) :- e(X).", "e(a).");
  dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  DownwardClosure closure =
      DownwardClosure::Build(w.program, model, dl::kInvalidFact);
  sat::Solver solver;
  const Encoding encoding = CnfEncoder::Encode(closure, solver);
  EXPECT_TRUE(encoding.trivially_unsat);
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kUnsat);
}

TEST_F(ChainFixture, ModelCountEqualsNumberOfCompressedDags) {
  // The chain database admits exactly two compressed DAGs of path(a, c)
  // (direct edge; two hops). Count solver models projected to leaves via
  // blocking of full structural assignments and compare member sets.
  std::set<std::set<dl::FactId>> supports;
  int guard = 0;
  while (solver.Solve() == sat::SolveResult::kSat && guard++ < 20) {
    std::set<dl::FactId> support;
    std::vector<sat::Lit> blocking;
    for (dl::FactId leaf : encoding.database_leaves) {
      const sat::Var var = encoding.node_vars.at(leaf);
      const bool present = solver.ModelValue(var) == sat::LBool::kTrue;
      if (present) support.insert(leaf);
      blocking.push_back(sat::Lit::Make(var, present));
    }
    supports.insert(support);
    if (!solver.AddClause(blocking)) break;
  }
  EXPECT_EQ(supports.size(), 2u);
}

TEST(CnfEncoderTest, BothEncodingsProduceSameModels) {
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              "s(a). t(a, a, b). t(a, b, c). t(b, c, d).");
  dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  DownwardClosure closure = DownwardClosure::Build(w.program, model, target);

  auto count_members = [&](AcyclicityEncoding kind) {
    sat::Solver solver;
    CnfEncoder::Options options;
    options.acyclicity = kind;
    const Encoding encoding = CnfEncoder::Encode(closure, solver, options);
    int members = 0;
    while (solver.Solve() == sat::SolveResult::kSat && members < 50) {
      ++members;
      std::vector<sat::Lit> blocking;
      for (dl::FactId leaf : encoding.database_leaves) {
        const sat::Var var = encoding.node_vars.at(leaf);
        blocking.push_back(sat::Lit::Make(
            var, solver.ModelValue(var) == sat::LBool::kTrue));
      }
      if (!solver.AddClause(blocking)) break;
    }
    return members;
  };
  EXPECT_EQ(count_members(AcyclicityEncoding::kTransitiveClosure),
            count_members(AcyclicityEncoding::kVertexElimination));
}

}  // namespace
}  // namespace whyprov::provenance
