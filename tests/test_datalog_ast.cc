// Unit tests for terms, atoms, facts, rules, and the symbol table.

#include <memory>

#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/symbol_table.h"

namespace whyprov::datalog {
namespace {

TEST(SymbolTableTest, ConstantsInternToStableIds) {
  SymbolTable table;
  const SymbolId a = table.InternConstant("a");
  const SymbolId b = table.InternConstant("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.InternConstant("a"), a);
  EXPECT_EQ(table.ConstantName(a), "a");
  EXPECT_EQ(table.ConstantName(b), "b");
  EXPECT_EQ(table.NumConstants(), 2u);
}

TEST(SymbolTableTest, PredicateArityIsEnforced) {
  SymbolTable table;
  auto edge = table.RegisterPredicate("edge", 2);
  ASSERT_TRUE(edge.ok());
  auto again = table.RegisterPredicate("edge", 2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(edge.value(), again.value());
  auto clash = table.RegisterPredicate("edge", 3);
  EXPECT_FALSE(clash.ok());
  EXPECT_NE(clash.status().message().find("arity"), std::string::npos);
}

TEST(SymbolTableTest, FindPredicate) {
  SymbolTable table;
  EXPECT_FALSE(table.FindPredicate("nope").ok());
  auto p = table.RegisterPredicate("p", 1);
  ASSERT_TRUE(p.ok());
  auto found = table.FindPredicate("p");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), p.value());
}

TEST(TermTest, ConstantAndVariableAreDistinct) {
  const Term c = Term::Constant(5);
  const Term v = Term::Variable(5);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_variable());
  EXPECT_TRUE(v.is_variable());
  EXPECT_EQ(c.constant(), 5u);
  EXPECT_EQ(v.variable(), 5u);
  EXPECT_NE(c, v);
  EXPECT_EQ(c, Term::Constant(5));
}

TEST(FactTest, EqualityAndOrdering) {
  const Fact f1{0, {1, 2}};
  const Fact f2{0, {1, 2}};
  const Fact f3{0, {2, 1}};
  const Fact f4{1, {0, 0}};
  EXPECT_EQ(f1, f2);
  EXPECT_FALSE(f1 == f3);
  EXPECT_LT(f1, f3);
  EXPECT_LT(f3, f4);
  EXPECT_EQ(FactHash{}(f1), FactHash{}(f2));
}

TEST(RuleTest, SafetyRejectsHeadOnlyVariables) {
  SymbolTable table;
  const PredicateId p = table.RegisterPredicate("p", 1).value();
  const PredicateId q = table.RegisterPredicate("q", 1).value();
  Rule rule;
  rule.head = Atom{p, {Term::Variable(0)}};
  rule.body = {Atom{q, {Term::Variable(1)}}};
  rule.num_variables = 2;
  rule.variable_names = {"X", "Y"};
  EXPECT_FALSE(rule.CheckSafety().ok());
  rule.body.push_back(Atom{q, {Term::Variable(0)}});
  EXPECT_TRUE(rule.CheckSafety().ok());
}

TEST(RuleTest, SafetyRejectsEmptyBody) {
  SymbolTable table;
  const PredicateId p = table.RegisterPredicate("p", 0).value();
  Rule rule;
  rule.head = Atom{p, {}};
  EXPECT_FALSE(rule.CheckSafety().ok());
}

TEST(PrintingTest, FactAndRuleRendering) {
  auto table = std::make_shared<SymbolTable>();
  const PredicateId edge = table->RegisterPredicate("edge", 2).value();
  const PredicateId path = table->RegisterPredicate("path", 2).value();
  const SymbolId a = table->InternConstant("a");
  const SymbolId b = table->InternConstant("b");

  EXPECT_EQ(FactToString(Fact{edge, {a, b}}, *table), "edge(a, b)");

  Rule rule;
  rule.head = Atom{path, {Term::Variable(0), Term::Variable(1)}};
  rule.body = {Atom{edge, {Term::Variable(0), Term::Variable(2)}},
               Atom{path, {Term::Variable(2), Term::Variable(1)}}};
  rule.num_variables = 3;
  rule.variable_names = {"X", "Y", "Z"};
  EXPECT_EQ(RuleToString(rule, *table),
            "path(X, Y) :- edge(X, Z), path(Z, Y).");
}

}  // namespace
}  // namespace whyprov::datalog
