// Tests for semi-naive evaluation, ranks, indexes, and the grounder.

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/grounder.h"
#include "datalog/parser.h"
#include "util/rng.h"

namespace whyprov::datalog {
namespace {

struct Workspace {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  Database database;
};

Workspace Make(const char* program_text, const char* database_text) {
  auto symbols = std::make_shared<SymbolTable>();
  auto program = Parser::ParseProgram(symbols, program_text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  auto database = Parser::ParseDatabase(symbols, database_text);
  EXPECT_TRUE(database.ok()) << database.status().message();
  return Workspace{symbols, std::move(program).value(),
                   std::move(database).value()};
}

std::set<std::string> ModelFacts(const Model& model) {
  std::set<std::string> out;
  for (std::size_t i = 0; i < model.size(); ++i) {
    out.insert(FactToString(model.fact(static_cast<FactId>(i)),
                            model.symbols()));
  }
  return out;
}

TEST(EvaluatorTest, TransitiveClosureChain) {
  Workspace w = Make(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                     "edge(a, b). edge(b, c). edge(c, d).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const auto facts = ModelFacts(model);
  EXPECT_TRUE(facts.contains("path(a, d)"));
  EXPECT_TRUE(facts.contains("path(b, d)"));
  EXPECT_FALSE(facts.contains("path(d, a)"));
  // 3 edges + 6 paths.
  EXPECT_EQ(model.size(), 3u + 6u);
}

TEST(EvaluatorTest, PaperRunningExample) {
  // Example 1: path accessibility. A(d) must be derivable.
  Workspace w = Make(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                     R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const auto facts = ModelFacts(model);
  EXPECT_TRUE(facts.contains("a(a)"));
  EXPECT_TRUE(facts.contains("a(b)"));
  EXPECT_TRUE(facts.contains("a(c)"));
  EXPECT_TRUE(facts.contains("a(d)"));
}

TEST(EvaluatorTest, RanksAreFixpointRounds) {
  Workspace w = Make(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                     "edge(a, b). edge(b, c). edge(c, d).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  auto rank_of = [&](const char* text) {
    auto fact = Parser::ParseFact(w.symbols, text);
    EXPECT_TRUE(fact.ok());
    auto id = model.Find(fact.value());
    EXPECT_TRUE(id.has_value()) << text;
    return model.rank(*id);
  };
  EXPECT_EQ(rank_of("edge(a, b)"), 0);
  EXPECT_EQ(rank_of("path(a, b)"), 1);
  EXPECT_EQ(rank_of("path(a, c)"), 2);
  EXPECT_EQ(rank_of("path(a, d)"), 3);
}

TEST(EvaluatorTest, EmptyDatabaseYieldsNoDerivedFacts) {
  Workspace w = Make("p(X) :- q(X).", "r(a).");
  EvalStats stats;
  const Model model = Evaluator::Evaluate(w.program, w.database, &stats);
  EXPECT_EQ(model.size(), 1u);  // just r(a)
  EXPECT_EQ(stats.derived_facts, 0u);
}

TEST(EvaluatorTest, ConstantsInRuleBodiesFilter) {
  Workspace w = Make("p(X) :- e(X, marker).",
                     "e(a, marker). e(b, other).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const auto facts = ModelFacts(model);
  EXPECT_TRUE(facts.contains("p(a)"));
  EXPECT_FALSE(facts.contains("p(b)"));
}

TEST(EvaluatorTest, RepeatedVariablesInAtom) {
  Workspace w = Make("loop(X) :- e(X, X).", "e(a, a). e(a, b).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const auto facts = ModelFacts(model);
  EXPECT_TRUE(facts.contains("loop(a)"));
  EXPECT_EQ(facts.count("loop(b)"), 0u);
}

TEST(EvaluatorTest, ZeroAryPredicates) {
  Workspace w = Make("goal :- start(X), finish(X).",
                     "start(a). finish(a).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  EXPECT_TRUE(ModelFacts(model).contains("goal"));
}

TEST(EvaluatorTest, MutualRecursionEvenOdd) {
  Workspace w = Make(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )",
                     R"(
    zero(0). succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).
  )");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const auto facts = ModelFacts(model);
  EXPECT_TRUE(facts.contains("even(0)"));
  EXPECT_TRUE(facts.contains("odd(1)"));
  EXPECT_TRUE(facts.contains("even(2)"));
  EXPECT_TRUE(facts.contains("odd(3)"));
  EXPECT_TRUE(facts.contains("even(4)"));
  EXPECT_FALSE(facts.contains("odd(0)"));
  EXPECT_FALSE(facts.contains("even(1)"));
}

TEST(EvaluatorTest, AnswerTuples) {
  Workspace w = Make("p(X, Y) :- e(X, Y).", "e(a, b). e(b, c).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const PredicateId p = w.symbols->FindPredicate("p").value();
  EXPECT_EQ(model.AnswerTuples(p).size(), 2u);
}

// Property test: semi-naive evaluation computes exactly the same model and
// ranks as the naive reference, on random graph databases.
class SemiNaiveVsNaiveTest : public ::testing::TestWithParam<int> {};

TEST_P(SemiNaiveVsNaiveTest, ModelsAndRanksAgree) {
  util::Rng rng(0xabcd + GetParam());
  const int num_nodes = 8;
  std::string facts;
  for (int i = 0; i < 16; ++i) {
    const int u = static_cast<int>(rng.UniformInt(num_nodes));
    const int v = static_cast<int>(rng.UniformInt(num_nodes));
    facts += "edge(n" + std::to_string(u) + ", n" + std::to_string(v) + ").";
  }
  // Use the non-linear accessibility program to stress multiple idb atoms.
  Workspace w = Make(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), path(Z, Y).
  )",
                     facts.c_str());
  const Model semi = Evaluator::Evaluate(w.program, w.database);
  const Model naive = Evaluator::EvaluateNaive(w.program, w.database);
  EXPECT_EQ(ModelFacts(semi), ModelFacts(naive));
  // Ranks must agree fact by fact.
  for (std::size_t i = 0; i < semi.size(); ++i) {
    const Fact& fact = semi.fact(static_cast<FactId>(i));
    auto id = naive.Find(fact);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(semi.rank(static_cast<FactId>(i)), naive.rank(*id))
        << FactToString(fact, semi.symbols());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaiveVsNaiveTest, ::testing::Range(0, 15));

TEST(GrounderTest, InstancesWithHeadForChain) {
  Workspace w = Make(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                     "edge(a, b). edge(b, c).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const Grounder grounder(w.program, model);

  auto fact = Parser::ParseFact(w.symbols, "path(a, c)");
  ASSERT_TRUE(fact.ok());
  const FactId id = *model.Find(fact.value());
  const auto instances = grounder.InstancesWithHead(id);
  // Only one derivation: edge(a,b), path(b,c) via the recursive rule.
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].rule_index, 1u);
  EXPECT_EQ(instances[0].body.size(), 2u);
}

TEST(GrounderTest, MultipleDerivationsYieldMultipleInstances) {
  Workspace w = Make(R"(
    p(X) :- e1(X).
    p(X) :- e2(X).
  )",
                     "e1(a). e2(a).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const Grounder grounder(w.program, model);
  auto fact = Parser::ParseFact(w.symbols, "p(a)");
  ASSERT_TRUE(fact.ok());
  const FactId id = *model.Find(fact.value());
  EXPECT_EQ(grounder.InstancesWithHead(id).size(), 2u);
}

TEST(GrounderTest, BodySetCollapsesDuplicateFacts) {
  // Rule body mentions the same fact twice under one homomorphism.
  Workspace w = Make("p(X) :- e(X, Y), e(X, Y).", "e(a, b).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const Grounder grounder(w.program, model);
  auto fact = Parser::ParseFact(w.symbols, "p(a)");
  ASSERT_TRUE(fact.ok());
  const FactId id = *model.Find(fact.value());
  const auto instances = grounder.InstancesWithHead(id);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].body.size(), 1u);
}

TEST(GrounderTest, AllInstancesMatchPerHeadInstances) {
  Workspace w = Make(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                     "s(a). t(a, a, b). t(a, a, c). t(b, c, d).");
  const Model model = Evaluator::Evaluate(w.program, w.database);
  const Grounder grounder(w.program, model);
  const auto all = grounder.AllInstances();
  std::size_t per_head_total = 0;
  std::set<std::pair<FactId, std::vector<FactId>>> seen;
  for (std::size_t i = 0; i < model.size(); ++i) {
    for (const auto& instance :
         grounder.InstancesWithHead(static_cast<FactId>(i))) {
      if (seen.emplace(instance.head, instance.body).second) {
        ++per_head_total;
      }
    }
  }
  EXPECT_EQ(all.size(), per_head_total);
}

}  // namespace
}  // namespace whyprov::datalog
