// Unit tests for the Datalog parser.

#include <memory>

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace whyprov::datalog {
namespace {

std::shared_ptr<SymbolTable> Table() {
  return std::make_shared<SymbolTable>();
}

TEST(ParserTest, ParsesFactsAndRulesMixed) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, R"(
    % transitive closure
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    edge(a, b).
    edge(b, c).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status().message();
  EXPECT_EQ(unit.value().rules.size(), 2u);
  EXPECT_EQ(unit.value().facts.size(), 2u);
}

TEST(ParserTest, VariableConventionUppercaseAndUnderscore) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "p(X) :- q(X, _), r(lower).");
  ASSERT_TRUE(unit.ok()) << unit.status().message();
  const Rule& rule = unit.value().rules[0];
  EXPECT_TRUE(rule.body[0].terms[0].is_variable());
  EXPECT_TRUE(rule.body[0].terms[1].is_variable());
  EXPECT_TRUE(rule.body[1].terms[0].is_constant());
}

TEST(ParserTest, AnonymousVariablesAreFreshPerOccurrence) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "p(X) :- q(X, _, _).");
  ASSERT_TRUE(unit.ok()) << unit.status().message();
  const Rule& rule = unit.value().rules[0];
  EXPECT_EQ(rule.num_variables, 3u);
  EXPECT_NE(rule.body[0].terms[1], rule.body[0].terms[2]);
}

TEST(ParserTest, NumbersAndQuotedStringsAreConstants) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, R"(p(1, "two words", 'x').)");
  ASSERT_TRUE(unit.ok()) << unit.status().message();
  const Fact& fact = unit.value().facts[0];
  EXPECT_EQ(symbols->ConstantName(fact.args[0]), "1");
  EXPECT_EQ(symbols->ConstantName(fact.args[1]), "two words");
  EXPECT_EQ(symbols->ConstantName(fact.args[2]), "x");
}

TEST(ParserTest, ZeroAryAtoms) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "goal :- start. start.");
  ASSERT_TRUE(unit.ok()) << unit.status().message();
  EXPECT_EQ(unit.value().rules.size(), 1u);
  EXPECT_EQ(unit.value().facts.size(), 1u);
  EXPECT_TRUE(unit.value().rules[0].head.terms.empty());
}

TEST(ParserTest, RejectsVariableInFact) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "edge(X, b).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("variable"), std::string::npos);
}

TEST(ParserTest, RejectsUnsafeRule) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "p(X, Y) :- q(X).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("unsafe"), std::string::npos);
}

TEST(ParserTest, RejectsArityMismatch) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "p(a). p(a, b).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("arity"), std::string::npos);
}

TEST(ParserTest, ReportsErrorPosition) {
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "p(a).\nq(b) :- .");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("2:"), std::string::npos);
}

TEST(ParserTest, RejectsMissingDot) {
  auto symbols = Table();
  EXPECT_FALSE(Parser::ParseUnit(symbols, "p(a)").ok());
}

TEST(ParserTest, RejectsUnterminatedString) {
  auto symbols = Table();
  EXPECT_FALSE(Parser::ParseUnit(symbols, "p(\"oops).").ok());
}

TEST(ParserTest, ParseProgramRejectsFacts) {
  auto symbols = Table();
  EXPECT_FALSE(Parser::ParseProgram(symbols, "p(a).").ok());
  auto program = Parser::ParseProgram(symbols, "p(X) :- q(X).");
  ASSERT_TRUE(program.ok()) << program.status().message();
  EXPECT_EQ(program.value().rules().size(), 1u);
}

TEST(ParserTest, ParseDatabaseRejectsRules) {
  auto symbols = Table();
  EXPECT_FALSE(Parser::ParseDatabase(symbols, "p(X) :- q(X).").ok());
  auto db = Parser::ParseDatabase(symbols, "q(a). q(b). q(a).");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 2u);  // duplicates collapse
}

TEST(ParserTest, ParseSingleFact) {
  auto symbols = Table();
  auto fact = Parser::ParseFact(symbols, "edge(a, b)");
  ASSERT_TRUE(fact.ok()) << fact.status().message();
  EXPECT_EQ(FactToString(fact.value(), *symbols), "edge(a, b)");
}

TEST(ParserTest, ConstantsInRulesAreAllowed) {
  // The paper's hardness reductions use constants inside rules.
  auto symbols = Table();
  auto unit = Parser::ParseUnit(symbols, "marked(X) :- nextc(X, 0, 1).");
  ASSERT_TRUE(unit.ok()) << unit.status().message();
  const Rule& rule = unit.value().rules[0];
  EXPECT_TRUE(rule.body[0].terms[1].is_constant());
  EXPECT_TRUE(rule.body[0].terms[2].is_constant());
}

}  // namespace
}  // namespace whyprov::datalog
