// Tests for program analysis: edb/idb schemas, classification, strata.

#include <memory>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/program.h"

namespace whyprov::datalog {
namespace {

Program Parse(const std::shared_ptr<SymbolTable>& symbols,
              const char* text) {
  auto program = Parser::ParseProgram(symbols, text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  return std::move(program).value();
}

TEST(ProgramTest, ExtensionalAndIntensionalSchemas) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  const PredicateId edge = symbols->FindPredicate("edge").value();
  const PredicateId path = symbols->FindPredicate("path").value();
  EXPECT_TRUE(program.IsExtensional(edge));
  EXPECT_FALSE(program.IsIntensional(edge));
  EXPECT_TRUE(program.IsIntensional(path));
  EXPECT_FALSE(program.IsExtensional(path));
  EXPECT_EQ(program.ExtensionalPredicates(),
            std::vector<PredicateId>{edge});
  EXPECT_EQ(program.IntensionalPredicates(),
            std::vector<PredicateId>{path});
}

TEST(ProgramTest, LinearRecursiveClassification) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  EXPECT_TRUE(program.IsRecursive());
  EXPECT_TRUE(program.IsLinear());
  EXPECT_EQ(program.Classification(), ProgramClass::kLinearRecursive);
}

TEST(ProgramTest, NonLinearRecursiveClassification) {
  // The paper's running example: path accessibility (Cook 1974).
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )");
  EXPECT_TRUE(program.IsRecursive());
  EXPECT_FALSE(program.IsLinear());
  EXPECT_EQ(program.Classification(), ProgramClass::kNonLinearRecursive);
}

TEST(ProgramTest, NonRecursiveClassification) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    q(X) :- r(X, Y), s(Y).
    top(X) :- q(X), r(X, X).
  )");
  EXPECT_FALSE(program.IsRecursive());
  EXPECT_EQ(program.Classification(), ProgramClass::kNonRecursive);
}

TEST(ProgramTest, MutualRecursionIsDetected) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )");
  EXPECT_TRUE(program.IsRecursive());
  EXPECT_TRUE(program.IsLinear());
}

TEST(ProgramTest, LinearityCountsOnlyIntensionalBodyAtoms) {
  // Two extensional body atoms do not break linearity.
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    p(X) :- e1(X, Y), e2(Y, Z), p(Z).
    p(X) :- e1(X, X).
  )");
  EXPECT_TRUE(program.IsLinear());
  EXPECT_TRUE(program.IsRecursive());
}

TEST(ProgramTest, StratumOrderPutsDependenciesFirst) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    b(X) :- e(X).
    c(X) :- b(X).
    d(X) :- c(X), b(X).
  )");
  const auto& order = program.StratumOrder();
  auto position = [&](const char* name) {
    const PredicateId p = symbols->FindPredicate(name).value();
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == p) return i;
    }
    return order.size();
  };
  EXPECT_LT(position("e"), position("b"));
  EXPECT_LT(position("b"), position("c"));
  EXPECT_LT(position("c"), position("d"));
}

TEST(ProgramTest, RulesForHeadIndex) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    p(X) :- q(X).
    p(X) :- r(X).
    s(X) :- p(X).
  )");
  const PredicateId p = symbols->FindPredicate("p").value();
  const PredicateId q = symbols->FindPredicate("q").value();
  EXPECT_EQ(program.RulesForHead(p).size(), 2u);
  EXPECT_TRUE(program.RulesForHead(q).empty());
}

TEST(ProgramTest, MaxBodySize) {
  auto symbols = std::make_shared<SymbolTable>();
  Program program = Parse(symbols, R"(
    p(X) :- a(X), b(X), c(X).
    q(X) :- a(X).
  )");
  EXPECT_EQ(program.MaxBodySize(), 3u);
}

TEST(ProgramTest, ProgramClassNames) {
  EXPECT_EQ(ProgramClassName(ProgramClass::kNonRecursive), "non-recursive");
  EXPECT_EQ(ProgramClassName(ProgramClass::kLinearRecursive),
            "linear, recursive");
  EXPECT_EQ(ProgramClassName(ProgramClass::kNonLinearRecursive),
            "non-linear, recursive");
}

}  // namespace
}  // namespace whyprov::datalog
