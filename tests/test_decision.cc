// Property tests for the decision procedures: the SAT-based membership
// check and the exhaustive reference algorithms must all agree, and the
// inclusion structure between the four proof-tree classes must hold.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "provenance/decision.h"
#include "provenance/enumerator.h"
#include "tests/workspace.h"
#include "util/rng.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::FamilyToStrings;
using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

ProvenanceFamily CollectSat(const dl::Program& program,
                            const dl::Model& model, dl::FactId target) {
  WhyProvenanceEnumerator enumerator(program, model, target);
  ProvenanceFamily family;
  for (auto member = enumerator.Next(); member.has_value();
       member = enumerator.Next()) {
    family.insert(*member);
  }
  return family;
}

TEST(DecisionTest, SatMembershipOnPaperExample) {
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  // {s(a), t(a,a,d)} is a whyUN member.
  EXPECT_TRUE(IsWhyUnMemberSat(
      w.program, model, target,
      {w.ParseFact("s(a)"), w.ParseFact("t(a, a, d)")}));
  // The whole database is a why member but NOT a whyUN member.
  EXPECT_FALSE(IsWhyUnMemberSat(w.program, model, target,
                                {w.ParseFact("s(a)"), w.ParseFact("t(a, a, b)"),
                                 w.ParseFact("t(a, a, c)"),
                                 w.ParseFact("t(a, a, d)"),
                                 w.ParseFact("t(b, c, a)")}));
  // A subset that is not sufficient.
  EXPECT_FALSE(
      IsWhyUnMemberSat(w.program, model, target, {w.ParseFact("s(a)")}));
  // A fact outside the closure.
  EXPECT_FALSE(IsWhyUnMemberSat(
      w.program, model, target,
      {w.ParseFact("s(a)"), w.ParseFact("t(a, a, d)"),
       w.ParseFact("t(a, a, b)")}));
}

TEST(DecisionTest, ExhaustiveFamiliesOnPaperExample) {
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));

  auto any = EnumerateWhyExhaustive(w.program, model, target, TreeClass::kAny);
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(any.value().size(), 2u);  // Example 2

  auto un = EnumerateWhyExhaustive(w.program, model, target,
                                   TreeClass::kUnambiguous);
  ASSERT_TRUE(un.ok());
  EXPECT_EQ(FamilyToStrings(un.value(), *w.symbols),
            (std::set<std::string>{"{s(a), t(a, a, d)}"}));

  auto md = EnumerateWhyExhaustive(w.program, model, target,
                                   TreeClass::kMinimalDepth);
  ASSERT_TRUE(md.ok());
  // The minimal depth of a(d) is 2; only the small member is achievable.
  EXPECT_EQ(FamilyToStrings(md.value(), *w.symbols),
            (std::set<std::string>{"{s(a), t(a, a, d)}"}));

  auto nr = EnumerateWhyExhaustive(w.program, model, target,
                                   TreeClass::kNonRecursive);
  ASSERT_TRUE(nr.ok());
  // Non-recursive trees cannot derive a(a) from itself either.
  EXPECT_EQ(FamilyToStrings(nr.value(), *w.symbols),
            (std::set<std::string>{"{s(a), t(a, a, d)}"}));
}

// Random-instance generator over the non-linear path-accessibility program
// (the paper's running example): random s/t facts over a small domain.
Workspace RandomAccessibilityInstance(util::Rng& rng) {
  std::string facts;
  const int domain = 4;
  const int num_sources = 1 + static_cast<int>(rng.UniformInt(2));
  for (int i = 0; i < num_sources; ++i) {
    facts += "s(n" + std::to_string(rng.UniformInt(domain)) + ").";
  }
  const int num_t = 4 + static_cast<int>(rng.UniformInt(5));
  for (int i = 0; i < num_t; ++i) {
    facts += "t(n" + std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ").";
  }
  return MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                       facts.c_str());
}

class RandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceTest, SatEnumerationEqualsExhaustiveWhyUn) {
  util::Rng rng(0xf00d + GetParam());
  Workspace w = RandomAccessibilityInstance(rng);
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::PredicateId a = w.symbols->FindPredicate("a").value();
  for (dl::FactId target : model.Relation(a)) {
    auto exhaustive = EnumerateWhyExhaustive(w.program, model, target,
                                             TreeClass::kUnambiguous);
    ASSERT_TRUE(exhaustive.ok()) << exhaustive.status().message();
    const ProvenanceFamily sat_family = CollectSat(w.program, model, target);
    EXPECT_EQ(FamilyToStrings(sat_family, *w.symbols),
              FamilyToStrings(exhaustive.value(), *w.symbols))
        << "target " << dl::FactToString(model.fact(target), *w.symbols);
  }
}

TEST_P(RandomInstanceTest, SatMembershipAgreesWithFamily) {
  util::Rng rng(0xbeef + GetParam());
  Workspace w = RandomAccessibilityInstance(rng);
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::PredicateId a = w.symbols->FindPredicate("a").value();
  for (dl::FactId target : model.Relation(a)) {
    auto family = EnumerateWhyExhaustive(w.program, model, target,
                                         TreeClass::kUnambiguous);
    ASSERT_TRUE(family.ok());
    // Positive checks: every member must be accepted.
    for (const auto& member : family.value()) {
      EXPECT_TRUE(IsWhyUnMemberSat(w.program, model, target, member));
    }
    // Negative checks: random subsets of D not in the family are rejected.
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<dl::Fact> subset;
      for (const dl::Fact& fact : w.database.facts()) {
        if (rng.Bernoulli(0.5)) subset.push_back(fact);
      }
      std::sort(subset.begin(), subset.end());
      const bool in_family = family.value().contains(subset);
      EXPECT_EQ(IsWhyUnMemberSat(w.program, model, target, subset),
                in_family);
    }
  }
}

TEST_P(RandomInstanceTest, ClassInclusionsHold) {
  util::Rng rng(0xcafe + GetParam());
  Workspace w = RandomAccessibilityInstance(rng);
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::PredicateId a = w.symbols->FindPredicate("a").value();
  for (dl::FactId target : model.Relation(a)) {
    auto any =
        EnumerateWhyExhaustive(w.program, model, target, TreeClass::kAny);
    auto nr = EnumerateWhyExhaustive(w.program, model, target,
                                     TreeClass::kNonRecursive);
    auto md = EnumerateWhyExhaustive(w.program, model, target,
                                     TreeClass::kMinimalDepth);
    auto un = EnumerateWhyExhaustive(w.program, model, target,
                                     TreeClass::kUnambiguous);
    ASSERT_TRUE(any.ok() && nr.ok() && md.ok() && un.ok());
    // Each refined family is a subset of the arbitrary-tree family, and
    // none of them is empty (the target is derivable).
    EXPECT_FALSE(any.value().empty());
    EXPECT_FALSE(nr.value().empty());
    EXPECT_FALSE(md.value().empty());
    EXPECT_FALSE(un.value().empty());
    auto subset_of_any = [&](const ProvenanceFamily& family) {
      return std::includes(any.value().begin(), any.value().end(),
                           family.begin(), family.end());
    };
    EXPECT_TRUE(subset_of_any(nr.value()));
    EXPECT_TRUE(subset_of_any(md.value()));
    EXPECT_TRUE(subset_of_any(un.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest, ::testing::Range(0, 12));

// On linear programs, unambiguous and non-recursive proof trees coincide
// (the observation the paper uses for the Theorem 14 lower bound), so the
// two independently-implemented reference algorithms must agree.
class LinearProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(LinearProgramTest, WhyUnEqualsWhyNrOnLinearPrograms) {
  util::Rng rng(0x11ea + GetParam());
  std::string facts;
  const int nodes = 5;
  for (int i = 0; i < 9; ++i) {
    facts += "edge(n" + std::to_string(rng.UniformInt(nodes)) + ", n" +
             std::to_string(rng.UniformInt(nodes)) + ").";
  }
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              facts.c_str());
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::PredicateId path = w.symbols->FindPredicate("path").value();
  for (dl::FactId target : model.Relation(path)) {
    auto un = EnumerateWhyExhaustive(w.program, model, target,
                                     TreeClass::kUnambiguous);
    auto nr = EnumerateWhyExhaustive(w.program, model, target,
                                     TreeClass::kNonRecursive);
    ASSERT_TRUE(un.ok() && nr.ok());
    EXPECT_EQ(FamilyToStrings(un.value(), *w.symbols),
              FamilyToStrings(nr.value(), *w.symbols));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearProgramTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace whyprov::provenance
