// Tests for the Graphviz DOT exporters.

#include <gtest/gtest.h>

#include "provenance/dot_export.h"
#include "tests/workspace.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

Workspace Chain() {
  return MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                       "edge(a, b). edge(b, c).");
}

TEST(DotExportTest, ProofTreeDotStructure) {
  const Workspace w = Chain();
  ProofTree tree(w.ParseFact("path(a, c)"));
  const std::size_t e = tree.AddChild(0, w.ParseFact("edge(a, b)"));
  const std::size_t p = tree.AddChild(0, w.ParseFact("path(b, c)"));
  tree.AddChild(p, w.ParseFact("edge(b, c)"));
  (void)e;
  const std::string dot = ProofTreeToDot(tree, *w.symbols);
  EXPECT_NE(dot.find("digraph proof_tree"), std::string::npos);
  EXPECT_NE(dot.find("path(a, c)"), std::string::npos);
  // Leaves are boxes; 2 leaf nodes.
  std::size_t boxes = 0;
  for (std::size_t pos = dot.find("shape=box"); pos != std::string::npos;
       pos = dot.find("shape=box", pos + 1)) {
    ++boxes;
  }
  EXPECT_EQ(boxes, 2u);
  // 3 edges for 4 nodes.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 3u);
}

TEST(DotExportTest, ClosureDotContainsJunctions) {
  const Workspace w = Chain();
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("path(a, c)"));
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, target);
  const std::string dot = DownwardClosureToDot(closure, model);
  EXPECT_NE(dot.find("digraph downward_closure"), std::string::npos);
  // One junction point per hyperedge.
  std::size_t points = 0;
  for (std::size_t pos = dot.find("shape=point"); pos != std::string::npos;
       pos = dot.find("shape=point", pos + 1)) {
    ++points;
  }
  EXPECT_EQ(points, closure.edges().size());
  // The target is bold.
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

TEST(DotExportTest, LabelsAreEscaped) {
  auto symbols = std::make_shared<dl::SymbolTable>();
  auto unit = dl::Parser::ParseUnit(symbols, R"(p("quo\"te").)");
  // Quoted constants keep their content; DOT must escape embedded quotes.
  // (The parser treats backslash literally inside quotes, so build one
  // directly instead.)
  const dl::SymbolId c = symbols->InternConstant("a\"b");
  const dl::PredicateId p = symbols->RegisterPredicate("q", 1).value();
  ProofTree tree(dl::Fact{p, {c}});
  const std::string dot = ProofTreeToDot(tree, *symbols);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
  (void)unit;
}

}  // namespace
}  // namespace whyprov::provenance
