// Tests for the downward closure (the hypergraph of relevant rule
// instances, Definition 42 and gri restriction).

#include <gtest/gtest.h>

#include "provenance/downward_closure.h"
#include "tests/workspace.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

TEST(DownwardClosureTest, ChainClosureContainsOnlyRelevantFacts) {
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              "edge(a, b). edge(b, c). edge(x, y).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("path(a, c)"));
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, target);
  ASSERT_TRUE(closure.derivable());
  EXPECT_EQ(closure.target(), target);
  // Relevant: path(a,c), edge(a,b), path(b,c), edge(b,c). Irrelevant:
  // anything involving x, y.
  EXPECT_EQ(closure.nodes().size(), 4u);
  EXPECT_FALSE(closure.ContainsNode(*model.Find(w.ParseFact("edge(x, y)"))));
  // Two hyperedges: path(a,c) <- {edge(a,b), path(b,c)} and
  // path(b,c) <- {edge(b,c)}.
  EXPECT_EQ(closure.edges().size(), 2u);
  // Database leaves: the two relevant edges.
  EXPECT_EQ(closure.DatabaseLeaves().size(), 2u);
}

TEST(DownwardClosureTest, UnderivableTargetYieldsEmptyClosure) {
  Workspace w = MakeWorkspace("p(X) :- e(X).", "e(a).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, dl::kInvalidFact);
  EXPECT_FALSE(closure.derivable());
  EXPECT_TRUE(closure.nodes().empty());
  EXPECT_TRUE(closure.edges().empty());
}

TEST(DownwardClosureTest, PaperExampleClosureStructure) {
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, target);
  ASSERT_TRUE(closure.derivable());
  // Nodes: a(d), a(a), t(a,a,d), s(a), a(b), a(c), t(b,c,a), t(a,a,b),
  // t(a,a,c) = 9.
  EXPECT_EQ(closure.nodes().size(), 9u);
  // a(a) has two derivations: from s(a) and from a(b), a(c), t(b,c,a).
  const dl::FactId a_a = *model.Find(w.ParseFact("a(a)"));
  EXPECT_EQ(closure.EdgesWithHead(a_a).size(), 2u);
  // a(d) has exactly one derivation.
  EXPECT_EQ(closure.EdgesWithHead(target).size(), 1u);
  // Database leaves: all 5 database facts are relevant here.
  EXPECT_EQ(closure.DatabaseLeaves().size(), 5u);
}

TEST(DownwardClosureTest, BodySetsAreSortedAndUnique) {
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              "s(a). t(a, a, b).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(b)"));
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, target);
  // a(b) <- {a(a), t(a,a,b)}: the two a-atoms collapse in the body set.
  ASSERT_EQ(closure.EdgesWithHead(target).size(), 1u);
  const auto& edge = closure.edges()[closure.EdgesWithHead(target)[0]];
  EXPECT_EQ(edge.body.size(), 2u);
  EXPECT_TRUE(std::is_sorted(edge.body.begin(), edge.body.end()));
}

TEST(DownwardClosureTest, HyperedgesDeduplicateAcrossRules) {
  // Two distinct rules that ground to the same (head, body-set) hyperedge.
  Workspace w = MakeWorkspace(R"(
    p(X) :- e(X, Y).
    p(Y) :- e(X, Y).
  )",
                              "e(a, a).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("p(a)"));
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, target);
  // Both rules yield p(a) <- {e(a,a)}: a single hyperedge.
  EXPECT_EQ(closure.EdgesWithHead(target).size(), 1u);
}

TEST(DownwardClosureTest, EdbTargetIsItsOwnLeaf) {
  Workspace w = MakeWorkspace("p(X) :- e(X).", "e(a).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("e(a)"));
  const DownwardClosure closure =
      DownwardClosure::Build(w.program, model, target);
  ASSERT_TRUE(closure.derivable());
  EXPECT_EQ(closure.nodes().size(), 1u);
  EXPECT_TRUE(closure.edges().empty());
  ASSERT_EQ(closure.DatabaseLeaves().size(), 1u);
  EXPECT_EQ(closure.DatabaseLeaves()[0], target);
}

}  // namespace
}  // namespace whyprov::provenance
