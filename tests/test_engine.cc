// Tests of the `whyprov::Engine` facade: construction error paths, the
// Enumeration handle (caps, exhaustion, iteration), SAT backend selection
// via the SolverFactory, the prepare/execute split (PreparedQuery, plan
// cache, batch serving, multi-threaded request hammering), and
// cross-checks against the expectations of test_enumerator.cc.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/plan_cache.h"
#include "provenance/query_plan.h"
#include "scenarios/scenarios.h"
#include "util/mutex.h"
#include "tests/workspace.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using whyprov::testing::FamilyToStrings;
using whyprov::testing::MemberToString;
namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

constexpr const char* kExample1Program = R"(
  a(X) :- s(X).
  a(X) :- a(Y), a(Z), t(Y, Z, X).
)";
constexpr const char* kExample1Database =
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).";
constexpr const char* kExample4Database =
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).";

pv::ProvenanceFamily Drain(Enumeration& enumeration) {
  pv::ProvenanceFamily family;
  for (auto member = enumeration.Next(); member.has_value();
       member = enumeration.Next()) {
    family.insert(*member);
  }
  return family;
}

// --- FromText error paths ------------------------------------------------

TEST(EngineFromTextTest, UnknownAnswerPredicateIsNotFound) {
  auto engine = Engine::FromText("p(X) :- e(X).", "e(a).", "nonexistent");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineFromTextTest, ExtensionalAnswerPredicateIsInvalidArgument) {
  auto engine = Engine::FromText("p(X) :- e(X).", "e(a).", "e");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineFromTextTest, ParseFailureIsParseError) {
  auto engine = Engine::FromText("p(X) :- :-", "e(a).", "p");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kParseError);
  auto bad_db = Engine::FromText("p(X) :- e(X).", "e(a", "p");
  ASSERT_FALSE(bad_db.ok());
  EXPECT_EQ(bad_db.status().code(), util::StatusCode::kParseError);
}

TEST(EngineFromTextTest, EmptyProgramIsNotFound) {
  // No rules at all: the answer predicate cannot occur, much less be
  // intensional.
  auto engine = Engine::FromText("", "e(a).", "p");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineFromTextTest, UnknownSolverBackendIsNotFound) {
  EngineOptions options;
  options.solver_backend = "no-such-solver";
  auto engine = Engine::FromText(kExample1Program, kExample1Database, "a",
                                 options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

// --- Enumerate: cross-check against test_enumerator expectations ---------

TEST(EngineEnumerateTest, PaperExample1WhyUnHasSingleMember) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
  const pv::ProvenanceFamily family = Drain(enumeration.value());
  EXPECT_EQ(FamilyToStrings(family, engine.value().model().symbols()),
            (std::set<std::string>{"{s(a), t(a, a, d)}"}));
  EXPECT_TRUE(enumeration.value().exhausted());
  EXPECT_FALSE(enumeration.value().hit_member_cap());
  EXPECT_FALSE(enumeration.value().hit_timeout());
}

TEST(EngineEnumerateTest, PaperExample4WhyUnHasTwoMembers) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  const pv::ProvenanceFamily family = Drain(enumeration.value());
  EXPECT_EQ(FamilyToStrings(family, engine.value().model().symbols()),
            (std::set<std::string>{"{s(a), t(a, a, c), t(c, c, d)}",
                                   "{s(b), t(b, b, c), t(c, c, d)}"}));
}

TEST(EngineEnumerateTest, RangeForIterationYieldsEveryMember) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  std::size_t members = 0;
  for (const auto& member : enumeration.value()) {
    EXPECT_FALSE(member.empty());
    ++members;
  }
  EXPECT_EQ(members, 2u);
  EXPECT_EQ(enumeration.value().members_emitted(), 2u);
  EXPECT_EQ(enumeration.value().delays_ms().size(), 2u);
}

TEST(EngineEnumerateTest, MaxMembersCapsTheEnumeration) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  request.max_members = 1;
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_TRUE(enumeration.value().Next().has_value());
  EXPECT_FALSE(enumeration.value().Next().has_value());
  EXPECT_TRUE(enumeration.value().hit_member_cap());
  EXPECT_FALSE(enumeration.value().exhausted());
  // All() after the cap stays empty (the budget is spent).
  EXPECT_TRUE(enumeration.value().All().empty());
}

TEST(EngineEnumerateTest, ExhaustionIsSticky) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(enumeration.value().All().size(), 1u);
  EXPECT_TRUE(enumeration.value().exhausted());
  EXPECT_FALSE(enumeration.value().Next().has_value());
  EXPECT_TRUE(enumeration.value().All().empty());
}

TEST(EngineEnumerateTest, MissingTargetIsInvalidArgument) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  auto enumeration = engine.value().Enumerate(EnumerateRequest{});
  ASSERT_FALSE(enumeration.ok());
  EXPECT_EQ(enumeration.status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(EngineEnumerateTest, UnderivableTargetTextIsNotFound) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(zzz)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_FALSE(enumeration.ok());
  EXPECT_EQ(enumeration.status().code(), util::StatusCode::kNotFound);
}

// --- Backend selection ----------------------------------------------------

TEST(SolverFactoryTest, BuiltInBackendsAreRegistered) {
  auto& factory = sat::SolverFactory::Instance();
  EXPECT_TRUE(factory.Has("cdcl"));
  EXPECT_TRUE(factory.Has("dpll"));
  EXPECT_TRUE(factory.Has("dimacs-pipe"));
  auto cdcl = factory.Create("cdcl");
  ASSERT_TRUE(cdcl.ok());
  EXPECT_EQ(cdcl.value()->name(), "cdcl");
  auto dpll = factory.Create("dpll");
  ASSERT_TRUE(dpll.ok());
  EXPECT_EQ(dpll.value()->name(), "dpll");
}

TEST(SolverFactoryTest, UnknownBackendIsNotFound) {
  auto solver = sat::SolverFactory::Instance().Create("no-such-solver");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), util::StatusCode::kNotFound);
}

TEST(SolverFactoryTest, DuplicateRegistrationIsRejected) {
  auto status = sat::SolverFactory::Instance().Register(
      "cdcl", [](const sat::SolverOptions&)
                  -> util::Result<std::unique_ptr<sat::SolverInterface>> {
        return util::Status::Error("never called");
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(SolverFactoryTest, DimacsPipeWithoutCommandIsNotFound) {
  unsetenv("WHYPROV_DIMACS_SOLVER");
  auto solver = sat::SolverFactory::Instance().Create("dimacs-pipe");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineBackendTest, FailingExternalSolverIsReportedAsIncomplete) {
  // /bin/false produces no output: the pipe backend answers kUnknown,
  // and the enumeration must flag itself incomplete instead of passing
  // the empty result off as a genuinely empty family.
  setenv("WHYPROV_DIMACS_SOLVER", "/bin/false", /*overwrite=*/1);
  auto engine = Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  request.solver_backend = "dimacs-pipe";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
  EXPECT_TRUE(enumeration.value().All().empty());
  EXPECT_TRUE(enumeration.value().incomplete());

  // Decide must not misreport the give-up as "not a member".
  DecideRequest decide;
  decide.target_text = "a(d)";
  decide.candidate = {engine.value().model().fact(
      engine.value().FactIdOf("s(a)").value())};
  decide.solver_backend = "dimacs-pipe";
  auto verdict = engine.value().Decide(decide);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), util::StatusCode::kResourceExhausted);
  unsetenv("WHYPROV_DIMACS_SOLVER");
}

TEST(EngineBackendTest, CdclAndDpllAgreeOnPaperExample) {
  for (const char* database : {kExample1Database, kExample4Database}) {
    auto engine = Engine::FromText(kExample1Program, database, "a");
    ASSERT_TRUE(engine.ok());
    pv::ProvenanceFamily families[2];
    int index = 0;
    for (const char* backend : {"cdcl", "dpll"}) {
      EnumerateRequest request;
      request.target_text = "a(d)";
      request.solver_backend = backend;
      auto enumeration = engine.value().Enumerate(request);
      ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
      EXPECT_EQ(enumeration.value().solver().name(), backend);
      families[index++] = Drain(enumeration.value());
    }
    EXPECT_EQ(families[0], families[1]);
    EXPECT_FALSE(families[0].empty());
  }
}

TEST(EngineBackendTest, CdclAndDpllAgreeOnAScenarioInstance) {
  // A small sparse transitive-closure instance (the Bitcoin-like
  // generator at toy scale): both backends must produce identical
  // why-provenance families for every sampled answer.
  const auto scenario = scenarios::MakeTransClosure(
      scenarios::GraphKind::kSparse, /*num_nodes=*/24, /*num_edges=*/30,
      /*seed=*/20240611);
  EngineOptions options;
  options.sampling_seed = 7;
  const Engine engine = scenario.MakeEngine(options);
  const auto targets = engine.SampleAnswers(3);
  ASSERT_FALSE(targets.empty());
  for (dl::FactId target : targets) {
    pv::ProvenanceFamily families[2];
    int index = 0;
    for (const char* backend : {"cdcl", "dpll"}) {
      EnumerateRequest request;
      request.target = target;
      request.max_members = 64;
      request.solver_backend = backend;
      auto enumeration = engine.Enumerate(request);
      ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
      families[index++] = Drain(enumeration.value());
    }
    EXPECT_EQ(families[0], families[1])
        << "backends disagree on " << engine.FactToText(target);
    EXPECT_FALSE(families[0].empty());
  }
}

// --- Prepare / execute ----------------------------------------------------

TEST(EnginePrepareTest, PreparedQueryServesEveryService) {
  auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  auto prepared = engine.value().Prepare("a(d)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().message();
  EXPECT_EQ(prepared.value().target_text(), "a(d)");
  EXPECT_FALSE(prepared.value().closure().nodes().empty());
  EXPECT_GT(prepared.value().formula().num_clauses(), 0u);

  // Two executions of one plan are independent full enumerations.
  const std::set<std::string> expected{"{s(a), t(a, a, c), t(c, c, d)}",
                                       "{s(b), t(b, b, c), t(c, c, d)}"};
  for (int round = 0; round < 2; ++round) {
    auto enumeration = prepared.value().Enumerate();
    ASSERT_TRUE(enumeration.ok());
    EXPECT_EQ(FamilyToStrings(Drain(enumeration.value()),
                              engine.value().model().symbols()),
              expected);
  }

  // Decide and Explain run against the same plan.
  DecideRequest decide;
  decide.candidate = {
      engine.value().model().fact(engine.value().FactIdOf("s(a)").value()),
      engine.value().model().fact(
          engine.value().FactIdOf("t(a, a, c)").value()),
      engine.value().model().fact(
          engine.value().FactIdOf("t(c, c, d)").value())};
  auto verdict = prepared.value().Decide(decide);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.value());
  auto explanation = prepared.value().Explain();
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation.value().tree.IsUnambiguous());
}

TEST(EnginePrepareTest, PreparedQueryOutlivesTheEngine) {
  std::optional<PreparedQuery> prepared;
  pv::ProvenanceFamily expected;
  {
    auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
    ASSERT_TRUE(engine.ok());
    auto result = engine.value().Prepare("a(d)");
    ASSERT_TRUE(result.ok());
    prepared = std::move(result).value();
    EnumerateRequest request;
    request.target_text = "a(d)";
    auto enumeration = engine.value().Enumerate(request);
    ASSERT_TRUE(enumeration.ok());
    expected = Drain(enumeration.value());
  }  // the Engine (and its Result) are gone; the plan must stay valid
  auto enumeration = prepared->Enumerate();
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(Drain(enumeration.value()), expected);
  auto tree = enumeration.value().ExplainLast();
  ASSERT_TRUE(tree.ok()) << tree.status().message();
}

TEST(EnginePrepareTest, EnumerationSurvivesEngineMove) {
  // Satellite of the PreparedQuery ownership model: handles share the
  // engine state, so moving the engine out of its Result (or anywhere
  // else) must not invalidate a live enumeration.
  auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  ASSERT_TRUE(enumeration.value().Next().has_value());
  const Engine moved = std::move(engine).value();
  EXPECT_TRUE(enumeration.value().Next().has_value());
  auto tree = enumeration.value().ExplainLast();
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  EXPECT_TRUE(tree.value().IsUnambiguous());
  (void)moved;
}

// --- Plan cache -----------------------------------------------------------

TEST(EnginePlanCacheTest, RepeatedRequestsSkipClosureAndEncode) {
  auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  ExplainRequest explain;
  explain.target_text = "a(d)";
  ASSERT_TRUE(engine.value().Explain(explain).ok());
  PlanCacheStats stats = engine.value().plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.size, 1u);

  // The second Explain and a following Enumerate reuse the cached plan:
  // the closure+encode phase runs exactly once per target.
  ASSERT_TRUE(engine.value().Explain(explain).ok());
  EnumerateRequest enumerate;
  enumerate.target_text = "a(d)";
  ASSERT_TRUE(engine.value().Enumerate(enumerate).ok());
  stats = engine.value().plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(EnginePlanCacheTest, LruEvictionRespectsCapacity) {
  EngineOptions options;
  options.plan_cache_capacity = 1;
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a", options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value().Prepare("a(d)").ok());
  ASSERT_TRUE(engine.value().Prepare("a(b)").ok());  // evicts a(d)
  ASSERT_TRUE(engine.value().Prepare("a(d)").ok());  // misses again
  const PlanCacheStats stats = engine.value().plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 1u);
}

TEST(EnginePlanCacheTest, ZeroCapacityDisablesCaching) {
  EngineOptions options;
  options.plan_cache_capacity = 0;
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a", options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value().Prepare("a(d)").ok());
  ASSERT_TRUE(engine.value().Prepare("a(d)").ok());
  const PlanCacheStats stats = engine.value().plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 0u);
}

TEST(EnginePlanCacheTest, GetOrBuildCoalescesConcurrentMisses) {
  auto engine = Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  const auto target = engine.value().FactIdOf("a(d)");
  ASSERT_TRUE(target.ok());

  // One real plan compiled up front; the gated build function below
  // hands it out, so the test controls when the single allowed build
  // finishes — and the waiters must be parked on the flight until then.
  auto plan = pv::QueryPlan::Build(engine.value().program(),
                                   engine.value().model(), target.value(),
                                   pv::CnfEncoder::Options());
  ASSERT_NE(plan, nullptr);
  constexpr std::uint64_t kVersion = 7;
  plan->set_model_version(kVersion);

  PlanCache cache(/*capacity=*/4);
  util::Mutex gate_mutex;
  util::CondVar gate_cv;
  bool gate_open = false;
  std::atomic<std::size_t> builds{0};
  const auto build = [&] {
    ++builds;
    const util::MutexLock lock(gate_mutex);
    while (!gate_open) gate_cv.Wait(gate_mutex);
    return plan;
  };

  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const pv::QueryPlan>> results(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[i] = cache.GetOrBuild(
          target.value(), pv::AcyclicityEncoding::kVertexElimination,
          kVersion, build);
    });
  }
  // Exactly one thread became the builder (parked on the gate); the
  // stats expose the others latching onto its flight as they arrive.
  while (cache.stats().coalesced < kThreads - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    const util::MutexLock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.NotifyAll();
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(builds.load(), 1u);
  for (const auto& result : results) EXPECT_EQ(result, plan);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.coalesced, kThreads - 1);
  EXPECT_EQ(stats.size, 1u);

  // The flight is gone: a follow-up lookup is a plain hit, no build.
  EXPECT_EQ(cache.GetOrBuild(target.value(),
                             pv::AcyclicityEncoding::kVertexElimination,
                             kVersion, build),
            plan);
  EXPECT_EQ(builds.load(), 1u);
  EXPECT_EQ(cache.stats().hits, stats.hits + 1);
}

// --- Concurrency ----------------------------------------------------------

namespace {

/// Shared fixture for the hammer tests: a small transitive-closure
/// instance with a few sampled targets and their serially-computed
/// expected families.
struct ConcurrencyWorkload {
  std::optional<Engine> engine;
  std::vector<dl::FactId> targets;
  std::vector<pv::ProvenanceFamily> expected;

  explicit ConcurrencyWorkload(std::size_t plan_cache_capacity) {
    const auto scenario = scenarios::MakeTransClosure(
        scenarios::GraphKind::kSparse, /*num_nodes=*/24, /*num_edges=*/30,
        /*seed=*/20240611);
    EngineOptions options;
    options.sampling_seed = 7;
    options.plan_cache_capacity = plan_cache_capacity;
    engine.emplace(scenario.MakeEngine(options));
    targets = engine->SampleAnswers(3);
    for (dl::FactId target : targets) {
      EnumerateRequest request;
      request.target = target;
      auto enumeration = engine->Enumerate(request);
      EXPECT_TRUE(enumeration.ok());
      expected.push_back(Drain(enumeration.value()));
    }
  }
};

/// N threads hammer one shared engine with mixed Enumerate/Decide calls
/// on overlapping targets; every thread checks its results against the
/// serial ground truth.
void HammerSharedEngine(const ConcurrencyWorkload& workload) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 3;
  const Engine& engine = *workload.engine;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &workload, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::size_t i = (t + round) % workload.targets.size();
        const dl::FactId target = workload.targets[i];
        EnumerateRequest enumerate;
        enumerate.target = target;
        auto enumeration = engine.Enumerate(enumerate);
        ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
        EXPECT_EQ(Drain(enumeration.value()), workload.expected[i]);
        DecideRequest decide;
        decide.target = target;
        decide.candidate = *workload.expected[i].begin();
        auto verdict = engine.Decide(decide);
        ASSERT_TRUE(verdict.ok()) << verdict.status().message();
        EXPECT_TRUE(verdict.value());
        // Mix in the text surface: rendering reads the symbol table that
        // concurrent parses (here: of a fresh, never-seen constant, which
        // interns) mutate. Both must go through the engine's lock.
        EXPECT_FALSE(engine.FactToText(target).empty());
        const std::string fresh = "tc(new_" + std::to_string(t) + "_" +
                                  std::to_string(round) + ", nowhere)";
        EXPECT_FALSE(engine.FactIdOf(fresh).ok());  // parses, then kNotFound
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace

TEST(EngineConcurrencyTest, SharedEngineWithPlanCache) {
  const ConcurrencyWorkload workload(/*plan_cache_capacity=*/64);
  HammerSharedEngine(workload);
  // The warm-up plus the hammer revisit every target many times over.
  const PlanCacheStats stats = workload.engine->plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
}

TEST(EngineConcurrencyTest, SharedEngineWithoutPlanCache) {
  // Capacity 0 forces every request to build its own plan, exercising
  // concurrent closure construction over the shared model.
  const ConcurrencyWorkload workload(/*plan_cache_capacity=*/0);
  HammerSharedEngine(workload);
}

TEST(EngineConcurrencyTest, OnePreparedPlanManyThreads) {
  const ConcurrencyWorkload workload(/*plan_cache_capacity=*/64);
  auto prepared = workload.engine->Prepare(workload.targets[0]);
  ASSERT_TRUE(prepared.ok());
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&prepared, &workload] {
      auto enumeration = prepared.value().Enumerate();
      ASSERT_TRUE(enumeration.ok());
      EXPECT_EQ(Drain(enumeration.value()), workload.expected[0]);
    });
  }
  for (std::thread& thread : threads) thread.join();
}

// --- Batch serving --------------------------------------------------------

TEST(EngineBatchTest, EnumerateBatchMatchesSequentialResults) {
  const ConcurrencyWorkload workload(/*plan_cache_capacity=*/64);
  const Engine& engine = *workload.engine;
  // Repeat every target several times and add one unresolvable request.
  std::vector<EnumerateRequest> requests;
  for (int round = 0; round < 4; ++round) {
    for (dl::FactId target : workload.targets) {
      EnumerateRequest request;
      request.target = target;
      requests.push_back(request);
    }
  }
  EnumerateRequest bad;
  bad.target_text = "nosuchfact(x, y)";
  requests.push_back(bad);

  const BatchEnumerateResult result = engine.EnumerateBatch(requests);
  ASSERT_EQ(result.outcomes.size(), requests.size());
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    ASSERT_TRUE(result.outcomes[i].status.ok())
        << result.outcomes[i].status.message();
    EXPECT_TRUE(result.outcomes[i].exhausted);
    pv::ProvenanceFamily family(result.outcomes[i].members.begin(),
                                result.outcomes[i].members.end());
    EXPECT_EQ(family, workload.expected[i % workload.targets.size()]);
  }
  EXPECT_FALSE(result.outcomes.back().status.ok());
  EXPECT_EQ(result.stats.requests, requests.size());
  EXPECT_EQ(result.stats.succeeded, requests.size() - 1);
  EXPECT_EQ(result.stats.failed, 1u);
  EXPECT_GT(result.stats.members_emitted, 0u);
  EXPECT_GT(result.stats.queries_per_second, 0.0);
  // The batch revisits each target 4 times: the plan cache must serve the
  // repeats (the warm-up already compiled every target).
  EXPECT_GT(result.stats.plan_cache_hits, 0u);
  EXPECT_EQ(result.stats.plan_cache_misses, 0u);
}

TEST(EngineBatchTest, DecideBatchAgreesWithDecide) {
  const ConcurrencyWorkload workload(/*plan_cache_capacity=*/64);
  const Engine& engine = *workload.engine;
  std::vector<DecideRequest> requests;
  for (std::size_t i = 0; i < workload.targets.size(); ++i) {
    DecideRequest in_family;
    in_family.target = workload.targets[i];
    in_family.candidate = *workload.expected[i].begin();
    requests.push_back(in_family);
    DecideRequest not_in_family;
    not_in_family.target = workload.targets[i];
    not_in_family.candidate = {};  // the empty set never supports a proof
    requests.push_back(not_in_family);
  }
  const BatchDecideResult result = engine.DecideBatch(requests);
  ASSERT_EQ(result.outcomes.size(), requests.size());
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    ASSERT_TRUE(result.outcomes[i].status.ok());
    EXPECT_EQ(result.outcomes[i].member, i % 2 == 0) << "request " << i;
  }
  EXPECT_EQ(result.stats.succeeded, requests.size());
  EXPECT_EQ(result.stats.failed, 0u);
}

// --- Decide / Baseline / Explain -----------------------------------------

TEST(EngineDecideTest, MatchesTheEnumeratedFamily) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  const Engine& e = engine.value();

  DecideRequest in_family;
  in_family.target_text = "a(d)";
  in_family.candidate = {
      e.model().fact(e.FactIdOf("s(a)").value()),
      e.model().fact(e.FactIdOf("t(a, a, c)").value()),
      e.model().fact(e.FactIdOf("t(c, c, d)").value())};
  auto verdict = e.Decide(in_family);
  ASSERT_TRUE(verdict.ok()) << verdict.status().message();
  EXPECT_TRUE(verdict.value());

  // The whole database is a why() member but not a whyUN() member
  // (Example 2 vs Example 4 of the paper).
  DecideRequest whole_db;
  whole_db.target_text = "a(d)";
  whole_db.candidate = e.database().facts();
  whole_db.tree_class = pv::TreeClass::kUnambiguous;
  auto not_unambiguous = e.Decide(whole_db);
  ASSERT_TRUE(not_unambiguous.ok());
  EXPECT_FALSE(not_unambiguous.value());
}

TEST(EngineBaselineTest, MatchesComputeWhyAllAtOnce) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  BaselineRequest request;
  request.target_text = "a(d)";
  auto family = engine.value().Baseline(request);
  ASSERT_TRUE(family.ok()) << family.status().message();
  EXPECT_EQ(FamilyToStrings(family.value(),
                            engine.value().model().symbols()),
            (std::set<std::string>{
                "{s(a), t(a, a, d)}",
                "{s(a), t(a, a, b), t(a, a, c), t(a, a, d), t(b, c, a)}"}));
}

TEST(EngineExplainTest, ReturnsMemberAndValidatingTree) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  ExplainRequest request;
  request.target_text = "a(d)";
  auto explanation = engine.value().Explain(request);
  ASSERT_TRUE(explanation.ok()) << explanation.status().message();
  EXPECT_FALSE(explanation.value().member.empty());
  const auto target = engine.value().FactIdOf("a(d)");
  ASSERT_TRUE(target.ok());
  util::Status valid = explanation.value().tree.Validate(
      engine.value().program(), engine.value().database(),
      engine.value().model().fact(target.value()));
  EXPECT_TRUE(valid.ok()) << valid.message();
  EXPECT_TRUE(explanation.value().tree.IsUnambiguous());

  // Asking for a member beyond the family's size is kNotFound.
  request.member_index = 99;
  auto missing = engine.value().Explain(request);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace whyprov
