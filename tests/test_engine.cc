// Tests of the `whyprov::Engine` facade: construction error paths, the
// Enumeration handle (caps, exhaustion, iteration), SAT backend selection
// via the SolverFactory, and cross-checks against the expectations of
// test_enumerator.cc.

#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "scenarios/scenarios.h"
#include "tests/workspace.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using whyprov::testing::FamilyToStrings;
using whyprov::testing::MemberToString;
namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

constexpr const char* kExample1Program = R"(
  a(X) :- s(X).
  a(X) :- a(Y), a(Z), t(Y, Z, X).
)";
constexpr const char* kExample1Database =
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).";
constexpr const char* kExample4Database =
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).";

pv::ProvenanceFamily Drain(Enumeration& enumeration) {
  pv::ProvenanceFamily family;
  for (auto member = enumeration.Next(); member.has_value();
       member = enumeration.Next()) {
    family.insert(*member);
  }
  return family;
}

// --- FromText error paths ------------------------------------------------

TEST(EngineFromTextTest, UnknownAnswerPredicateIsNotFound) {
  auto engine = Engine::FromText("p(X) :- e(X).", "e(a).", "nonexistent");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineFromTextTest, ExtensionalAnswerPredicateIsInvalidArgument) {
  auto engine = Engine::FromText("p(X) :- e(X).", "e(a).", "e");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineFromTextTest, ParseFailureIsParseError) {
  auto engine = Engine::FromText("p(X) :- :-", "e(a).", "p");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kParseError);
  auto bad_db = Engine::FromText("p(X) :- e(X).", "e(a", "p");
  ASSERT_FALSE(bad_db.ok());
  EXPECT_EQ(bad_db.status().code(), util::StatusCode::kParseError);
}

TEST(EngineFromTextTest, EmptyProgramIsNotFound) {
  // No rules at all: the answer predicate cannot occur, much less be
  // intensional.
  auto engine = Engine::FromText("", "e(a).", "p");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineFromTextTest, UnknownSolverBackendIsNotFound) {
  EngineOptions options;
  options.solver_backend = "no-such-solver";
  auto engine = Engine::FromText(kExample1Program, kExample1Database, "a",
                                 options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kNotFound);
}

// --- Enumerate: cross-check against test_enumerator expectations ---------

TEST(EngineEnumerateTest, PaperExample1WhyUnHasSingleMember) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
  const pv::ProvenanceFamily family = Drain(enumeration.value());
  EXPECT_EQ(FamilyToStrings(family, engine.value().model().symbols()),
            (std::set<std::string>{"{s(a), t(a, a, d)}"}));
  EXPECT_TRUE(enumeration.value().exhausted());
  EXPECT_FALSE(enumeration.value().hit_member_cap());
  EXPECT_FALSE(enumeration.value().hit_timeout());
}

TEST(EngineEnumerateTest, PaperExample4WhyUnHasTwoMembers) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  const pv::ProvenanceFamily family = Drain(enumeration.value());
  EXPECT_EQ(FamilyToStrings(family, engine.value().model().symbols()),
            (std::set<std::string>{"{s(a), t(a, a, c), t(c, c, d)}",
                                   "{s(b), t(b, b, c), t(c, c, d)}"}));
}

TEST(EngineEnumerateTest, RangeForIterationYieldsEveryMember) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  std::size_t members = 0;
  for (const auto& member : enumeration.value()) {
    EXPECT_FALSE(member.empty());
    ++members;
  }
  EXPECT_EQ(members, 2u);
  EXPECT_EQ(enumeration.value().members_emitted(), 2u);
  EXPECT_EQ(enumeration.value().delays_ms().size(), 2u);
}

TEST(EngineEnumerateTest, MaxMembersCapsTheEnumeration) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  request.max_members = 1;
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_TRUE(enumeration.value().Next().has_value());
  EXPECT_FALSE(enumeration.value().Next().has_value());
  EXPECT_TRUE(enumeration.value().hit_member_cap());
  EXPECT_FALSE(enumeration.value().exhausted());
  // All() after the cap stays empty (the budget is spent).
  EXPECT_TRUE(enumeration.value().All().empty());
}

TEST(EngineEnumerateTest, ExhaustionIsSticky) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(enumeration.value().All().size(), 1u);
  EXPECT_TRUE(enumeration.value().exhausted());
  EXPECT_FALSE(enumeration.value().Next().has_value());
  EXPECT_TRUE(enumeration.value().All().empty());
}

TEST(EngineEnumerateTest, MissingTargetIsInvalidArgument) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  auto enumeration = engine.value().Enumerate(EnumerateRequest{});
  ASSERT_FALSE(enumeration.ok());
  EXPECT_EQ(enumeration.status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(EngineEnumerateTest, UnderivableTargetTextIsNotFound) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(zzz)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_FALSE(enumeration.ok());
  EXPECT_EQ(enumeration.status().code(), util::StatusCode::kNotFound);
}

// --- Backend selection ----------------------------------------------------

TEST(SolverFactoryTest, BuiltInBackendsAreRegistered) {
  auto& factory = sat::SolverFactory::Instance();
  EXPECT_TRUE(factory.Has("cdcl"));
  EXPECT_TRUE(factory.Has("dpll"));
  EXPECT_TRUE(factory.Has("dimacs-pipe"));
  auto cdcl = factory.Create("cdcl");
  ASSERT_TRUE(cdcl.ok());
  EXPECT_EQ(cdcl.value()->name(), "cdcl");
  auto dpll = factory.Create("dpll");
  ASSERT_TRUE(dpll.ok());
  EXPECT_EQ(dpll.value()->name(), "dpll");
}

TEST(SolverFactoryTest, UnknownBackendIsNotFound) {
  auto solver = sat::SolverFactory::Instance().Create("no-such-solver");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), util::StatusCode::kNotFound);
}

TEST(SolverFactoryTest, DuplicateRegistrationIsRejected) {
  auto status = sat::SolverFactory::Instance().Register(
      "cdcl", [](const sat::SolverOptions&)
                  -> util::Result<std::unique_ptr<sat::SolverInterface>> {
        return util::Status::Error("never called");
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(SolverFactoryTest, DimacsPipeWithoutCommandIsNotFound) {
  unsetenv("WHYPROV_DIMACS_SOLVER");
  auto solver = sat::SolverFactory::Instance().Create("dimacs-pipe");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), util::StatusCode::kNotFound);
}

TEST(EngineBackendTest, FailingExternalSolverIsReportedAsIncomplete) {
  // /bin/false produces no output: the pipe backend answers kUnknown,
  // and the enumeration must flag itself incomplete instead of passing
  // the empty result off as a genuinely empty family.
  setenv("WHYPROV_DIMACS_SOLVER", "/bin/false", /*overwrite=*/1);
  auto engine = Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  EnumerateRequest request;
  request.target_text = "a(d)";
  request.solver_backend = "dimacs-pipe";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
  EXPECT_TRUE(enumeration.value().All().empty());
  EXPECT_TRUE(enumeration.value().incomplete());

  // Decide must not misreport the give-up as "not a member".
  DecideRequest decide;
  decide.target_text = "a(d)";
  decide.candidate = {engine.value().model().fact(
      engine.value().FactIdOf("s(a)").value())};
  decide.solver_backend = "dimacs-pipe";
  auto verdict = engine.value().Decide(decide);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), util::StatusCode::kResourceExhausted);
  unsetenv("WHYPROV_DIMACS_SOLVER");
}

TEST(EngineBackendTest, CdclAndDpllAgreeOnPaperExample) {
  for (const char* database : {kExample1Database, kExample4Database}) {
    auto engine = Engine::FromText(kExample1Program, database, "a");
    ASSERT_TRUE(engine.ok());
    pv::ProvenanceFamily families[2];
    int index = 0;
    for (const char* backend : {"cdcl", "dpll"}) {
      EnumerateRequest request;
      request.target_text = "a(d)";
      request.solver_backend = backend;
      auto enumeration = engine.value().Enumerate(request);
      ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
      EXPECT_EQ(enumeration.value().solver().name(), backend);
      families[index++] = Drain(enumeration.value());
    }
    EXPECT_EQ(families[0], families[1]);
    EXPECT_FALSE(families[0].empty());
  }
}

TEST(EngineBackendTest, CdclAndDpllAgreeOnAScenarioInstance) {
  // A small sparse transitive-closure instance (the Bitcoin-like
  // generator at toy scale): both backends must produce identical
  // why-provenance families for every sampled answer.
  const auto scenario = scenarios::MakeTransClosure(
      scenarios::GraphKind::kSparse, /*num_nodes=*/24, /*num_edges=*/30,
      /*seed=*/20240611);
  EngineOptions options;
  options.sampling_seed = 7;
  const Engine engine = scenario.MakeEngine(options);
  const auto targets = engine.SampleAnswers(3);
  ASSERT_FALSE(targets.empty());
  for (dl::FactId target : targets) {
    pv::ProvenanceFamily families[2];
    int index = 0;
    for (const char* backend : {"cdcl", "dpll"}) {
      EnumerateRequest request;
      request.target = target;
      request.max_members = 64;
      request.solver_backend = backend;
      auto enumeration = engine.Enumerate(request);
      ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
      families[index++] = Drain(enumeration.value());
    }
    EXPECT_EQ(families[0], families[1])
        << "backends disagree on " << engine.FactToText(target);
    EXPECT_FALSE(families[0].empty());
  }
}

// --- Decide / Baseline / Explain -----------------------------------------

TEST(EngineDecideTest, MatchesTheEnumeratedFamily) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  const Engine& e = engine.value();

  DecideRequest in_family;
  in_family.target_text = "a(d)";
  in_family.candidate = {
      e.model().fact(e.FactIdOf("s(a)").value()),
      e.model().fact(e.FactIdOf("t(a, a, c)").value()),
      e.model().fact(e.FactIdOf("t(c, c, d)").value())};
  auto verdict = e.Decide(in_family);
  ASSERT_TRUE(verdict.ok()) << verdict.status().message();
  EXPECT_TRUE(verdict.value());

  // The whole database is a why() member but not a whyUN() member
  // (Example 2 vs Example 4 of the paper).
  DecideRequest whole_db;
  whole_db.target_text = "a(d)";
  whole_db.candidate = e.database().facts();
  whole_db.tree_class = pv::TreeClass::kUnambiguous;
  auto not_unambiguous = e.Decide(whole_db);
  ASSERT_TRUE(not_unambiguous.ok());
  EXPECT_FALSE(not_unambiguous.value());
}

TEST(EngineBaselineTest, MatchesComputeWhyAllAtOnce) {
  auto engine =
      Engine::FromText(kExample1Program, kExample1Database, "a");
  ASSERT_TRUE(engine.ok());
  BaselineRequest request;
  request.target_text = "a(d)";
  auto family = engine.value().Baseline(request);
  ASSERT_TRUE(family.ok()) << family.status().message();
  EXPECT_EQ(FamilyToStrings(family.value(),
                            engine.value().model().symbols()),
            (std::set<std::string>{
                "{s(a), t(a, a, d)}",
                "{s(a), t(a, a, b), t(a, a, c), t(a, a, d), t(b, c, a)}"}));
}

TEST(EngineExplainTest, ReturnsMemberAndValidatingTree) {
  auto engine =
      Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  ExplainRequest request;
  request.target_text = "a(d)";
  auto explanation = engine.value().Explain(request);
  ASSERT_TRUE(explanation.ok()) << explanation.status().message();
  EXPECT_FALSE(explanation.value().member.empty());
  const auto target = engine.value().FactIdOf("a(d)");
  ASSERT_TRUE(target.ok());
  util::Status valid = explanation.value().tree.Validate(
      engine.value().program(), engine.value().database(),
      engine.value().model().fact(target.value()));
  EXPECT_TRUE(valid.ok()) << valid.message();
  EXPECT_TRUE(explanation.value().tree.IsUnambiguous());

  // Asking for a member beyond the family's size is kNotFound.
  request.member_index = 99;
  auto missing = engine.value().Explain(request);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace whyprov
