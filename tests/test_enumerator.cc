// End-to-end tests of the SAT-based whyUN enumeration pipeline, anchored
// on the paper's running examples (Examples 1-4) and Proposition 15.

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "provenance/decision.h"
#include "provenance/enumerator.h"
#include "provenance/proof_dag.h"
#include "tests/workspace.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::FamilyToStrings;
using whyprov::testing::MakeWorkspace;
using whyprov::testing::MemberToString;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

ProvenanceFamily Collect(WhyProvenanceEnumerator& enumerator) {
  ProvenanceFamily family;
  for (auto member = enumerator.Next(); member.has_value();
       member = enumerator.Next()) {
    family.insert(*member);
  }
  return family;
}

TEST(EnumeratorTest, PaperExample1WhyUnHasSingleMember) {
  // Example 1/2 database. why((d)) = {{s(a),t(a,a,d)}, D} for arbitrary
  // trees, but the second member's witness derives a(a) from itself, so
  // whyUN((d)) contains only the small member.
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  WhyProvenanceEnumerator enumerator(w.program, model, target);
  const ProvenanceFamily family = Collect(enumerator);
  EXPECT_EQ(FamilyToStrings(family, *w.symbols),
            (std::set<std::string>{"{s(a), t(a, a, d)}"}));
}

TEST(EnumeratorTest, PaperExample4WhyUnHasTwoMembers) {
  // Example 4: whyUN((d)) = {{s(a), t(a,a,c), t(c,c,d)},
  //                          {s(b), t(b,b,c), t(c,c,d)}}.
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  WhyProvenanceEnumerator enumerator(w.program, model, target);
  const ProvenanceFamily family = Collect(enumerator);
  EXPECT_EQ(FamilyToStrings(family, *w.symbols),
            (std::set<std::string>{"{s(a), t(a, a, c), t(c, c, d)}",
                                   "{s(b), t(b, b, c), t(c, c, d)}"}));
}

TEST(EnumeratorTest, WhyAndWhyUnDifferOnExample1) {
  // The arbitrary-tree family (baseline) contains the whole database as a
  // second member; the unambiguous family does not.
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  auto why = ComputeWhyAllAtOnce(w.program, model, target);
  ASSERT_TRUE(why.ok()) << why.status().message();
  EXPECT_EQ(FamilyToStrings(why.value(), *w.symbols),
            (std::set<std::string>{
                "{s(a), t(a, a, d)}",
                "{s(a), t(a, a, b), t(a, a, c), t(a, a, d), t(b, c, a)}"}));
}

TEST(EnumeratorTest, UnderivableTargetEnumeratesNothing) {
  Workspace w = MakeWorkspace("p(X) :- e(X).", "e(a).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  WhyProvenanceEnumerator enumerator(w.program, model, dl::kInvalidFact);
  EXPECT_FALSE(enumerator.Next().has_value());
}

TEST(EnumeratorTest, DelaysAreRecordedPerMember) {
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              "edge(a, b). edge(b, c). edge(a, c).");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("path(a, c)"));
  WhyProvenanceEnumerator enumerator(w.program, model, target);
  const ProvenanceFamily family = Collect(enumerator);
  // Two explanations: the direct edge and the two-hop path.
  EXPECT_EQ(family.size(), 2u);
  EXPECT_EQ(enumerator.delays_ms().size(), 2u);
  EXPECT_GE(enumerator.timings().closure_seconds, 0.0);
}

TEST(EnumeratorTest, WitnessChoicesUnravelToValidUnambiguousTrees) {
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              R"(
    s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("a(d)"));
  WhyProvenanceEnumerator enumerator(w.program, model, target);
  int members = 0;
  for (auto member = enumerator.Next(); member.has_value();
       member = enumerator.Next()) {
    ++members;
    const CompressedDag dag(&enumerator.closure(),
                            enumerator.last_witness_choices());
    ASSERT_TRUE(dag.Validate().ok());
    auto tree = dag.UnravelToProofTree(w.program, model);
    ASSERT_TRUE(tree.ok()) << tree.status().message();
    util::Status valid =
        tree.value().Validate(w.program, w.database, model.fact(target));
    EXPECT_TRUE(valid.ok()) << valid.message();
    EXPECT_TRUE(tree.value().IsUnambiguous());
    // The tree's support must be exactly the emitted member.
    const std::set<dl::Fact> support_set = tree.value().Support();
    std::vector<dl::Fact> support(support_set.begin(), support_set.end());
    std::sort(support.begin(), support.end());
    EXPECT_EQ(support, *member);
  }
  EXPECT_EQ(members, 2);
}

TEST(EnumeratorTest, BothAcyclicityEncodingsYieldTheSameFamily) {
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              R"(
    edge(a, b). edge(b, c). edge(c, d). edge(a, c). edge(b, d).
  )");
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId target = *model.Find(w.ParseFact("path(a, d)"));
  WhyProvenanceEnumerator::Options tc;
  tc.acyclicity = AcyclicityEncoding::kTransitiveClosure;
  WhyProvenanceEnumerator::Options ve;
  ve.acyclicity = AcyclicityEncoding::kVertexElimination;
  WhyProvenanceEnumerator with_tc(w.program, model, target, tc);
  WhyProvenanceEnumerator with_ve(w.program, model, target, ve);
  EXPECT_EQ(Collect(with_tc), Collect(with_ve));
}

TEST(PipelineTest, FromTextEndToEnd) {
  auto engine = whyprov::Engine::FromText(
      R"(
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
      )",
      "edge(a, b). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  EXPECT_EQ(engine.value().AnswerFactIds().size(), 3u);
  whyprov::EnumerateRequest request;
  request.target_text = "path(a, c)";
  auto enumeration = engine.value().Enumerate(request);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
  const auto members = enumeration.value().All();
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(MemberToString(members.front(), engine.value().model().symbols()),
            "{edge(a, b), edge(b, c)}");
}

TEST(PipelineTest, FromTextRejectsUnknownAnswerPredicate) {
  EXPECT_FALSE(whyprov::Engine::FromText("p(X) :- e(X).", "e(a).",
                                         "nonexistent")
                   .ok());
  // Extensional answer predicates are rejected too.
  EXPECT_FALSE(
      whyprov::Engine::FromText("p(X) :- e(X).", "e(a).", "e").ok());
}

TEST(PipelineTest, SampleAnswersIsDeterministicPerSeed) {
  auto engine = whyprov::Engine::FromText(
      R"(
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
      )",
      "edge(a, b). edge(b, c). edge(c, d).", "path");
  ASSERT_TRUE(engine.ok());
  util::Rng rng1(7);
  util::Rng rng2(7);
  EXPECT_EQ(engine.value().SampleAnswers(3, rng1),
            engine.value().SampleAnswers(3, rng2));
  util::Rng rng3(7);
  EXPECT_EQ(engine.value().SampleAnswers(100, rng3).size(), 6u);
}

}  // namespace
}  // namespace whyprov::provenance
