// Tests for the first-order rewriting of non-recursive queries
// (Theorem 9 / Lemmas 11 and 12 made executable).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "provenance/decision.h"
#include "provenance/fo_rewriting.h"
#include "tests/workspace.h"
#include "util/rng.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

TEST(FoRewritingTest, RejectsRecursivePrograms) {
  Workspace w = MakeWorkspace(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              "edge(a, b).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("path").value());
  EXPECT_FALSE(rewriting.ok());
  EXPECT_NE(rewriting.status().message().find("non-recursive"),
            std::string::npos);
}

TEST(FoRewritingTest, SingleRuleUnfolding) {
  Workspace w = MakeWorkspace("q(X) :- r(X, Y), s(Y).", "r(a, b). s(b).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("q").value());
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().message();
  EXPECT_EQ(rewriting.value().unfoldings().size(), 1u);
  const auto& cq = rewriting.value().unfoldings()[0];
  EXPECT_EQ(cq.atoms.size(), 2u);
}

TEST(FoRewritingTest, UnionAcrossRules) {
  Workspace w = MakeWorkspace(R"(
    q(X) :- r(X).
    q(X) :- s(X).
  )",
                              "r(a). s(b).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("q").value());
  ASSERT_TRUE(rewriting.ok());
  EXPECT_EQ(rewriting.value().unfoldings().size(), 2u);
}

TEST(FoRewritingTest, NestedUnfoldingThroughIntermediatePredicate) {
  Workspace w = MakeWorkspace(R"(
    top(X) :- mid(X, Y), e3(Y).
    mid(X, Y) :- e1(X, Z), e2(Z, Y).
  )",
                              "e1(a, b). e2(b, c). e3(c).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("top").value());
  ASSERT_TRUE(rewriting.ok());
  ASSERT_EQ(rewriting.value().unfoldings().size(), 1u);
  EXPECT_EQ(rewriting.value().unfoldings()[0].atoms.size(), 3u);
  // All atoms must be extensional after unfolding.
  for (const dl::Atom& atom : rewriting.value().unfoldings()[0].atoms) {
    EXPECT_TRUE(w.program.IsExtensional(atom.predicate));
  }
}

TEST(FoRewritingTest, DecideAcceptsExactSupports) {
  Workspace w = MakeWorkspace("q(X) :- r(X, Y), s(Y).",
                              "r(a, b). r(a, c). s(b). s(c).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("q").value());
  ASSERT_TRUE(rewriting.ok());
  const dl::SymbolId a = w.symbols->InternConstant("a");

  auto decide = [&](const char* facts) {
    auto dprime = dl::Parser::ParseDatabase(w.symbols, facts);
    EXPECT_TRUE(dprime.ok());
    return rewriting.value().Decide(dprime.value(), {a});
  };
  EXPECT_TRUE(decide("r(a, b). s(b)."));
  EXPECT_TRUE(decide("r(a, c). s(c)."));
  // Mixed pair does not witness the join.
  EXPECT_FALSE(decide("r(a, b). s(c)."));
  // Extra unused fact: not an exact support.
  EXPECT_FALSE(decide("r(a, b). s(b). s(c)."));
  // Insufficient.
  EXPECT_FALSE(decide("r(a, b)."));
}

TEST(FoRewritingTest, VariableIdentificationIsAbsorbed) {
  // cq(Q) formally contains merged variants (e.g. X = Y); Decide must
  // accept a support where the join variables collapse to one constant.
  Workspace w = MakeWorkspace("q(X) :- r(X, Y), r(Y, X).", "r(a, a).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("q").value());
  ASSERT_TRUE(rewriting.ok());
  const dl::SymbolId a = w.symbols->InternConstant("a");
  auto dprime = dl::Parser::ParseDatabase(w.symbols, "r(a, a).");
  ASSERT_TRUE(dprime.ok());
  EXPECT_TRUE(rewriting.value().Decide(dprime.value(), {a}));
}

TEST(FoRewritingTest, ConstantsInRulesPropagate) {
  Workspace w = MakeWorkspace("q(X) :- r(X, marker).",
                              "r(a, marker). r(b, other).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("q").value());
  ASSERT_TRUE(rewriting.ok());
  const dl::SymbolId a = w.symbols->InternConstant("a");
  const dl::SymbolId b = w.symbols->InternConstant("b");
  auto good = dl::Parser::ParseDatabase(w.symbols, "r(a, marker).");
  auto bad = dl::Parser::ParseDatabase(w.symbols, "r(b, other).");
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_TRUE(rewriting.value().Decide(good.value(), {a}));
  EXPECT_FALSE(rewriting.value().Decide(bad.value(), {b}));
}

TEST(FoRewritingTest, ToStringRendersUnion) {
  Workspace w = MakeWorkspace(R"(
    q(X) :- r(X).
    q(X) :- s(X).
  )",
                              "r(a).");
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("q").value());
  ASSERT_TRUE(rewriting.ok());
  const std::string rendered = rewriting.value().ToString(*w.symbols);
  EXPECT_NE(rendered.find("r("), std::string::npos);
  EXPECT_NE(rendered.find("s("), std::string::npos);
}

// Property test (Lemma 12): on random non-recursive instances, the FO
// rewriting decides membership in why(t, D, Q) exactly as the exhaustive
// arbitrary-tree family does. (For non-recursive queries every proof tree
// is "small", so the exhaustive family is the ground truth.)
class FoAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(FoAgreementTest, DecideMatchesExhaustiveFamily) {
  util::Rng rng(0xfade + GetParam());
  // A two-level non-recursive query over random data.
  std::string facts;
  const int domain = 3;
  for (int i = 0; i < 6; ++i) {
    facts += "e1(n" + std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ").";
    facts += "e2(n" + std::to_string(rng.UniformInt(domain)) + ", n" +
             std::to_string(rng.UniformInt(domain)) + ").";
  }
  facts += "e3(n0). e3(n1).";
  Workspace w = MakeWorkspace(R"(
    top(X) :- mid(X, Y), e3(Y).
    mid(X, Y) :- e1(X, Z), e2(Z, Y).
    top(X) :- e1(X, X).
  )",
                              facts.c_str());
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  auto rewriting =
      FoRewriting::Build(w.program, w.symbols->FindPredicate("top").value());
  ASSERT_TRUE(rewriting.ok());

  const dl::PredicateId top = w.symbols->FindPredicate("top").value();
  for (dl::FactId target : model.Relation(top)) {
    auto family =
        EnumerateWhyExhaustive(w.program, model, target, TreeClass::kAny);
    ASSERT_TRUE(family.ok());
    const auto& tuple = model.fact(target).args;
    // Every member is accepted by the rewriting.
    for (const auto& member : family.value()) {
      dl::Database dprime(w.symbols);
      for (const dl::Fact& fact : member) dprime.Insert(fact);
      EXPECT_TRUE(rewriting.value().Decide(dprime, tuple))
          << "member rejected for "
          << dl::FactToString(model.fact(target), *w.symbols);
    }
    // Random subsets agree in both directions.
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<dl::Fact> subset;
      dl::Database dprime(w.symbols);
      for (const dl::Fact& fact : w.database.facts()) {
        if (rng.Bernoulli(0.3)) {
          subset.push_back(fact);
          dprime.Insert(fact);
        }
      }
      std::sort(subset.begin(), subset.end());
      EXPECT_EQ(rewriting.value().Decide(dprime, tuple),
                family.value().contains(subset));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoAgreementTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace whyprov::provenance
