// Tests of the incremental delta subsystem: Model tombstones and Clone,
// IncrementalEvaluator (semi-naive insertion propagation, DRed deletions,
// exact rank maintenance), and Engine::ApplyDelta (delta-vs-rebuild model
// equivalence on every scenario family, versioning, selective plan-cache
// invalidation, and snapshot isolation of in-flight prepared queries —
// the latter also under the TSan CI job).

#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/incremental.h"
#include "datalog/parser.h"
#include "scenarios/scenarios.h"
#include "tests/workspace.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using whyprov::testing::FamilyToStrings;
namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

constexpr const char* kPathProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";

constexpr const char* kExample1Program = R"(
  a(X) :- s(X).
  a(X) :- a(Y), a(Z), t(Y, Z, X).
)";
constexpr const char* kExample4Database =
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).";

/// The live model as (fact text -> rank): the observable content a
/// from-scratch rebuild must reproduce bit-for-bit (fact ids are
/// representation, not content).
std::map<std::string, int> ModelContents(const Engine& engine) {
  std::map<std::string, int> contents;
  const dl::Model& model = engine.model();
  for (dl::FactId id = 0; id < model.size(); ++id) {
    if (!model.alive(id)) continue;
    contents.emplace(engine.FactToText(id), model.rank(id));
  }
  return contents;
}

pv::ProvenanceFamily Drain(Enumeration& enumeration) {
  pv::ProvenanceFamily family;
  for (auto member = enumeration.Next(); member.has_value();
       member = enumeration.Next()) {
    family.insert(*member);
  }
  return family;
}

std::set<std::string> EnumerateFamily(const Engine& engine,
                                      const std::string& target_text) {
  EnumerateRequest request;
  request.target_text = target_text;
  auto enumeration = engine.Enumerate(request);
  EXPECT_TRUE(enumeration.ok()) << enumeration.status().message();
  return FamilyToStrings(Drain(enumeration.value()),
                         engine.model().symbols());
}

// --- Model tombstones ----------------------------------------------------

TEST(ModelTombstoneTest, RemoveHidesAndReviveRestores) {
  auto engine = Engine::FromText(kPathProgram, "edge(a, b).", "path");
  ASSERT_TRUE(engine.ok());
  dl::Model model = engine.value().model().Clone();
  const dl::Fact edge = model.fact(0);
  ASSERT_TRUE(model.Contains(edge));
  const std::size_t live_before = model.num_alive();

  model.Remove(0);
  EXPECT_FALSE(model.alive(0));
  EXPECT_FALSE(model.Contains(edge));
  EXPECT_FALSE(model.Find(edge).has_value());
  EXPECT_EQ(model.num_alive(), live_before - 1);
  EXPECT_TRUE(model.Relation(edge.predicate).empty());
  // The id space never shrinks: the payload stays addressable.
  EXPECT_EQ(model.fact(0), edge);

  // Revive in place: same id, new rank, back in the relation list.
  auto [id, inserted] = model.Add(edge, /*rank=*/0);
  EXPECT_EQ(id, 0u);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(model.alive(0));
  EXPECT_EQ(model.num_alive(), live_before);
  EXPECT_EQ(model.Relation(edge.predicate).size(), 1u);
}

TEST(ModelTombstoneTest, LookupIndexesTrackRemoval) {
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(a, c). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok());
  dl::Model model = engine.value().model().Clone();
  const dl::Fact edge_ab = model.fact(0);
  const dl::PredicateId edge = edge_ab.predicate;
  // Build the (bound first position) index, then remove a fact behind it.
  const std::vector<dl::SymbolId> key{edge_ab.args[0]};
  ASSERT_EQ(model.Lookup(edge, 0b01, key).size(), 2u);
  model.Remove(0);
  EXPECT_EQ(model.Lookup(edge, 0b01, key).size(), 1u);
  model.Add(edge_ab, 0);
  EXPECT_EQ(model.Lookup(edge, 0b01, key).size(), 2u);
}

TEST(ModelTombstoneTest, CloneIsDeepAndIndependent) {
  auto engine = Engine::FromText(kPathProgram, "edge(a, b).", "path");
  ASSERT_TRUE(engine.ok());
  const dl::Model& original = engine.value().model();
  dl::Model copy = original.Clone();
  copy.Remove(0);
  EXPECT_FALSE(copy.alive(0));
  EXPECT_TRUE(original.alive(0));
  EXPECT_EQ(original.Relation(original.fact(0).predicate).size(), 1u);
}

// --- IncrementalEvaluator ------------------------------------------------

/// Applies (added, removed) to `engine`'s database and cross-checks the
/// incremental model against a from-scratch evaluation, rank for rank.
void CheckDeltaAgainstRebuild(const Engine& engine,
                              const std::vector<dl::Fact>& added,
                              const std::vector<dl::Fact>& removed) {
  dl::Model model = engine.model().Clone();
  dl::IncrementalEvaluator::Apply(engine.program(), model, added, removed);

  dl::Database database = engine.database();
  for (const dl::Fact& fact : removed) database.Remove(fact);
  for (const dl::Fact& fact : added) database.Insert(fact);
  const dl::Model rebuilt =
      dl::Evaluator::Evaluate(engine.program(), database);

  std::map<std::string, int> incremental_contents, rebuilt_contents;
  for (dl::FactId id = 0; id < model.size(); ++id) {
    if (!model.alive(id)) continue;
    incremental_contents.emplace(
        dl::FactToString(model.fact(id), model.symbols()), model.rank(id));
  }
  for (dl::FactId id = 0; id < rebuilt.size(); ++id) {
    if (!rebuilt.alive(id)) continue;
    rebuilt_contents.emplace(
        dl::FactToString(rebuilt.fact(id), rebuilt.symbols()),
        rebuilt.rank(id));
  }
  EXPECT_EQ(incremental_contents, rebuilt_contents);
}

TEST(IncrementalEvaluatorTest, InsertionDerivesNewFactsWithExactRanks) {
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok());
  const auto edge_cd = dl::Parser::ParseFact(
      engine.value().database().symbols_ptr(), "edge(c, d)");
  ASSERT_TRUE(edge_cd.ok());
  CheckDeltaAgainstRebuild(engine.value(), {edge_cd.value()}, {});
}

TEST(IncrementalEvaluatorTest, ShortcutEdgeRelaxesExistingRanks) {
  // a -> b -> c -> d, then add the shortcut a -> c: path(a, c) drops from
  // rank 2 to rank 1 and path(a, d) from rank 3 to rank 2.
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c). edge(c, d).", "path");
  ASSERT_TRUE(engine.ok());
  const Engine& e = engine.value();
  EXPECT_EQ(e.model().rank(e.FactIdOf("path(a, d)").value()), 3);
  const auto shortcut =
      dl::Parser::ParseFact(e.database().symbols_ptr(), "edge(a, c)");
  ASSERT_TRUE(shortcut.ok());
  CheckDeltaAgainstRebuild(e, {shortcut.value()}, {});

  dl::Model model = e.model().Clone();
  dl::IncrementalEvaluator::Apply(e.program(), model, {shortcut.value()}, {});
  EXPECT_EQ(model.rank(*model.Find(e.model().fact(
                e.FactIdOf("path(a, d)").value()))),
            2);
}

TEST(IncrementalEvaluatorTest, DeletionChainsThroughRecursiveRules) {
  // Removing edge(a, b) kills path(a, b), path(a, c), path(a, d) — a
  // deletion cascading through the recursive rule — but leaves the b/c
  // suffix paths alone.
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c). edge(c, d).", "path");
  ASSERT_TRUE(engine.ok());
  const auto edge_ab = dl::Parser::ParseFact(
      engine.value().database().symbols_ptr(), "edge(a, b)");
  ASSERT_TRUE(edge_ab.ok());
  CheckDeltaAgainstRebuild(engine.value(), {}, {edge_ab.value()});
}

TEST(IncrementalEvaluatorTest, RederivationKeepsAlternativelySupportedFacts) {
  // Two routes from a to c; deleting one leaves path(a, c) derivable (the
  // DRed rederive step must bring it back with its exact new rank).
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c). edge(a, c).", "path");
  ASSERT_TRUE(engine.ok());
  const Engine& e = engine.value();
  const auto edge_ac =
      dl::Parser::ParseFact(e.database().symbols_ptr(), "edge(a, c)");
  ASSERT_TRUE(edge_ac.ok());
  CheckDeltaAgainstRebuild(e, {}, {edge_ac.value()});

  dl::Model model = e.model().Clone();
  const dl::DeltaEvalResult result = dl::IncrementalEvaluator::Apply(
      e.program(), model, {}, {edge_ac.value()});
  EXPECT_GE(result.rederived, 1u);
  const auto path_ac = model.Find(
      e.model().fact(e.FactIdOf("path(a, c)").value()));
  ASSERT_TRUE(path_ac.has_value());
  EXPECT_EQ(model.rank(*path_ac), 2);  // was 1 via the deleted direct edge
}

TEST(IncrementalEvaluatorTest, NonLinearRuleDeltaMatchesRebuild) {
  auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  const auto symbols = engine.value().database().symbols_ptr();
  const auto s_b = dl::Parser::ParseFact(symbols, "s(b)");
  const auto t_new = dl::Parser::ParseFact(symbols, "t(d, d, e)");
  ASSERT_TRUE(s_b.ok());
  ASSERT_TRUE(t_new.ok());
  // Mixed delta: drop one support of a(c), extend the chain by one hop.
  CheckDeltaAgainstRebuild(engine.value(), {t_new.value()}, {s_b.value()});
}

// --- Engine::ApplyDelta: scenario equivalence ----------------------------

/// Removes a deterministic slice of the database, checks the delta-updated
/// engine against a from-scratch rebuild (model contents and enumerated
/// families for sampled answers), then adds the slice back and checks
/// against the original engine.
void CheckScenarioDeltaEquivalence(
    const scenarios::GeneratedScenario& scenario, std::size_t num_removed) {
  EngineOptions options;
  options.sampling_seed = 11;
  Engine engine = scenario.MakeEngine(options);
  const std::map<std::string, int> original = ModelContents(engine);

  std::vector<dl::Fact> slice;
  const auto& facts = scenario.database.facts();
  ASSERT_GT(facts.size(), num_removed);
  const std::size_t stride = facts.size() / num_removed;
  for (std::size_t i = 0; i < num_removed; ++i) {
    slice.push_back(facts[(i * stride) % facts.size()]);
  }

  DeltaRequest removal;
  removal.removed_facts = slice;
  auto removal_stats = engine.ApplyDelta(removal);
  ASSERT_TRUE(removal_stats.ok()) << removal_stats.status().message();
  EXPECT_EQ(removal_stats.value().model_version, 1u);
  EXPECT_EQ(removal_stats.value().facts_removed, slice.size());

  dl::Database reduced = scenario.database;
  for (const dl::Fact& fact : slice) reduced.Remove(fact);
  const Engine rebuilt = Engine::FromParts(
      scenario.program, reduced,
      engine.answer_predicate(), options);
  EXPECT_EQ(ModelContents(engine), ModelContents(rebuilt));

  // Families must agree too, not just the models: sample answers from the
  // rebuilt engine and compare exhaustive enumerations by fact text.
  for (dl::FactId target : rebuilt.SampleAnswers(3)) {
    const std::string text = rebuilt.FactToText(target);
    EXPECT_EQ(EnumerateFamily(engine, text), EnumerateFamily(rebuilt, text))
        << scenario.scenario_name << ": families diverge on " << text;
  }

  // Round-trip: adding the slice back must restore the original model.
  DeltaRequest addition;
  addition.added_facts = slice;
  auto addition_stats = engine.ApplyDelta(addition);
  ASSERT_TRUE(addition_stats.ok()) << addition_stats.status().message();
  EXPECT_EQ(addition_stats.value().model_version, 2u);
  EXPECT_EQ(ModelContents(engine), original);
}

TEST(ApplyDeltaScenarioTest, TransClosureSparse) {
  CheckScenarioDeltaEquivalence(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60,
                                  20240611),
      /*num_removed=*/4);
}

TEST(ApplyDeltaScenarioTest, TransClosureSocial) {
  CheckScenarioDeltaEquivalence(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSocial, 16, 24,
                                  20240611),
      /*num_removed=*/3);
}

TEST(ApplyDeltaScenarioTest, Doctors) {
  CheckScenarioDeltaEquivalence(scenarios::MakeDoctors(1, 100, 20240611),
                                /*num_removed=*/4);
}

TEST(ApplyDeltaScenarioTest, Andersen) {
  CheckScenarioDeltaEquivalence(scenarios::MakeAndersen(100, 20240611),
                                /*num_removed=*/4);
}

TEST(ApplyDeltaScenarioTest, Galen) {
  CheckScenarioDeltaEquivalence(scenarios::MakeGalen(20, 20240611),
                                /*num_removed=*/3);
}

TEST(ApplyDeltaScenarioTest, Csda) {
  CheckScenarioDeltaEquivalence(scenarios::MakeCsda("httpd", 200, 20240611),
                                /*num_removed=*/4);
}

// --- Engine::ApplyDelta: API semantics -----------------------------------

TEST(ApplyDeltaTest, TextFactsAndStats) {
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  EXPECT_EQ(e.model_version(), 0u);

  DeltaRequest request;
  request.added_fact_texts = {"edge(c, d)"};
  auto stats = e.ApplyDelta(request);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats.value().model_version, 1u);
  EXPECT_EQ(stats.value().facts_added, 1u);
  EXPECT_EQ(stats.value().facts_removed, 0u);
  // edge(c, d) itself plus path(c, d), path(b, d), path(a, d).
  EXPECT_EQ(stats.value().facts_derived, 3u);
  EXPECT_GE(stats.value().facts_touched, 4u);
  EXPECT_EQ(e.model_version(), 1u);
  EXPECT_EQ(EnumerateFamily(e, "path(a, d)"),
            (std::set<std::string>{
                "{edge(a, b), edge(b, c), edge(c, d)}"}));
}

TEST(ApplyDeltaTest, NoOpDeltaKeepsVersionAndPlans) {
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  ASSERT_TRUE(e.Prepare("path(a, c)").ok());

  DeltaRequest request;
  request.added_fact_texts = {"edge(a, b)"};    // already present
  request.removed_fact_texts = {"edge(x, y)"};  // never present
  auto stats = e.ApplyDelta(request);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().model_version, 0u);
  EXPECT_EQ(stats.value().plans_retained, 1u);
  EXPECT_EQ(stats.value().plans_invalidated, 0u);
  EXPECT_EQ(e.model_version(), 0u);
  // The cached plan is still hot.
  const PlanCacheStats before = e.plan_cache_stats();
  ASSERT_TRUE(e.Prepare("path(a, c)").ok());
  EXPECT_EQ(e.plan_cache_stats().hits, before.hits + 1);
}

TEST(ApplyDeltaTest, RejectsIntensionalAndContradictoryDeltas) {
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();

  DeltaRequest intensional;
  intensional.added_fact_texts = {"path(a, d)"};
  auto status = e.ApplyDelta(intensional);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), util::StatusCode::kInvalidArgument);

  DeltaRequest contradictory;
  contradictory.added_fact_texts = {"edge(a, b)"};
  contradictory.removed_fact_texts = {"edge(a, b)"};
  status = e.ApplyDelta(contradictory);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), util::StatusCode::kInvalidArgument);

  DeltaRequest malformed;
  malformed.added_fact_texts = {"edge(a"};
  status = e.ApplyDelta(malformed);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), util::StatusCode::kParseError);

  // None of the failures may have published a new version.
  EXPECT_EQ(e.model_version(), 0u);
}

TEST(ApplyDeltaTest, RemovedTargetBecomesUnderivable) {
  auto engine = Engine::FromText(kPathProgram, "edge(a, b).", "path");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  ASSERT_TRUE(e.FactIdOf("path(a, b)").ok());
  DeltaRequest request;
  request.removed_fact_texts = {"edge(a, b)"};
  ASSERT_TRUE(e.ApplyDelta(request).ok());
  auto id = e.FactIdOf("path(a, b)");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), util::StatusCode::kNotFound);
  EXPECT_TRUE(e.AnswerFactIds().empty());
}

// --- Plan-cache invalidation ---------------------------------------------

TEST(ApplyDeltaPlanCacheTest, InvalidatesOnlyTouchedClosures) {
  // Two disjoint components: a -> b and x -> y. A delta in the x-branch
  // must invalidate only the x-plan; the a-plan stays hot and re-stamped.
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(x, y).", "path");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  auto plan_a = e.Prepare("path(a, b)");
  auto plan_x = e.Prepare("path(x, y)");
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_x.ok());

  DeltaRequest request;
  request.added_fact_texts = {"edge(y, z)"};
  auto stats = e.ApplyDelta(request);
  ASSERT_TRUE(stats.ok());
  // edge(y, z) creates path(y, z) and path(x, z): touches the x-closure?
  // No — path(x, y)'s closure is {path(x, y), edge(x, y)}, and the new
  // instance heads are path(y, z)/path(x, z), both new facts. Both plans
  // survive this pure extension.
  EXPECT_EQ(stats.value().plans_retained, 2u);
  EXPECT_EQ(stats.value().plans_invalidated, 0u);

  // Removing edge(x, y) kills the x-plan's closure leaf: selective.
  DeltaRequest removal;
  removal.removed_fact_texts = {"edge(x, y)"};
  stats = e.ApplyDelta(removal);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().plans_retained, 1u);
  EXPECT_EQ(stats.value().plans_invalidated, 1u);
  EXPECT_EQ(e.plan_cache_stats().invalidated, 1u);

  // The retained a-plan answers from the cache; its stamp matches the new
  // version, so the hit counter moves and the family is unchanged.
  const PlanCacheStats before = e.plan_cache_stats();
  EXPECT_EQ(EnumerateFamily(e, "path(a, b)"),
            (std::set<std::string>{"{edge(a, b)}"}));
  EXPECT_EQ(e.plan_cache_stats().hits, before.hits + 1);
  EXPECT_EQ(e.plan_cache_stats().misses, before.misses);
}

TEST(ApplyDeltaPlanCacheTest, RankChangeInsideClosureInvalidates) {
  // The closure of path(a, c) contains path(b, c); adding edge(a, c)
  // creates a new instance with head path(a, c) — inside the closure — so
  // the plan must go, even though the family only grows.
  auto engine = Engine::FromText(
      kPathProgram, "edge(a, b). edge(b, c).", "path");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  ASSERT_TRUE(e.Prepare("path(a, c)").ok());
  DeltaRequest request;
  request.added_fact_texts = {"edge(a, c)"};
  auto stats = e.ApplyDelta(request);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().plans_invalidated, 1u);
  EXPECT_EQ(EnumerateFamily(e, "path(a, c)"),
            (std::set<std::string>{"{edge(a, b), edge(b, c)}",
                                   "{edge(a, c)}"}));
}

// --- Snapshot isolation --------------------------------------------------

TEST(ApplyDeltaSnapshotTest, PreparedQueryKeepsServingItsVersion) {
  auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  auto prepared = e.Prepare("a(d)");
  ASSERT_TRUE(prepared.ok());
  const std::set<std::string> both{"{s(a), t(a, a, c), t(c, c, d)}",
                                   "{s(b), t(b, b, c), t(c, c, d)}"};
  const std::set<std::string> only_a{"{s(a), t(a, a, c), t(c, c, d)}"};

  DeltaRequest request;
  request.removed_fact_texts = {"s(b)"};
  ASSERT_TRUE(e.ApplyDelta(request).ok());

  // The fresh engine view serves the post-delta family...
  EXPECT_EQ(EnumerateFamily(e, "a(d)"), only_a);
  // ...while the prepared plan still serves its pinned snapshot.
  auto enumeration = prepared.value().Enumerate();
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(FamilyToStrings(Drain(enumeration.value()), e.model().symbols()),
            both);
}

TEST(ApplyDeltaSnapshotTest, ConcurrentReadersAndWriter) {
  // One writer thread oscillates the database (remove s(b) / add it back)
  // while reader threads hammer a pinned PreparedQuery (must always see
  // the full two-member family) and the live engine (must see one of the
  // two valid families, never a torn state). The TSan CI job runs this.
  auto engine = Engine::FromText(kExample1Program, kExample4Database, "a");
  ASSERT_TRUE(engine.ok());
  Engine& e = engine.value();
  auto prepared = e.Prepare("a(d)");
  ASSERT_TRUE(prepared.ok());
  const dl::FactId target = prepared.value().target();
  const std::set<std::string> both{"{s(a), t(a, a, c), t(c, c, d)}",
                                   "{s(b), t(b, b, c), t(c, c, d)}"};
  const std::set<std::string> only_a{"{s(a), t(a, a, c), t(c, c, d)}"};

  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kRounds = 12;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::size_t round = 0; round < kRounds; ++round) {
      DeltaRequest remove_b;
      remove_b.removed_fact_texts = {"s(b)"};
      ASSERT_TRUE(e.ApplyDelta(remove_b).ok());
      DeltaRequest add_b;
      add_b.added_fact_texts = {"s(b)"};
      ASSERT_TRUE(e.ApplyDelta(add_b).ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto pinned = prepared.value().Enumerate();
        ASSERT_TRUE(pinned.ok());
        pv::ProvenanceFamily family = Drain(pinned.value());
        EXPECT_EQ(family.size(), 2u);

        EnumerateRequest request;
        request.target = target;
        auto live = e.Enumerate(request);
        ASSERT_TRUE(live.ok());
        const auto live_family =
            FamilyToStrings(Drain(live.value()), e.model().symbols());
        EXPECT_TRUE(live_family == both || live_family == only_a)
            << "torn family of size " << live_family.size();
        EXPECT_FALSE(e.FactToText(target).empty());
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(e.model_version(), 2 * kRounds);
  EXPECT_EQ(EnumerateFamily(e, "a(d)"), both);
}

}  // namespace
}  // namespace whyprov
