// Cross-module integration and theory-validation tests: properties that
// tie the Datalog engine, the provenance machinery, and the SAT pipeline
// together, mirroring the paper's lemmas on realistic mixed workloads.

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "provenance/downward_closure.h"
#include "provenance/enumerator.h"
#include "provenance/fo_rewriting.h"
#include "provenance/proof_dag.h"
#include "scenarios/scenarios.h"
#include "tests/workspace.h"
#include "util/rng.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;
namespace sc = whyprov::scenarios;

// Lemma 29 (and Proposition 28): the evaluator's rank of a fact equals its
// minimal proof-DAG depth, computed here independently by dynamic
// programming over the downward closure.
class RankIsMinDagDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(RankIsMinDagDepthTest, OnRandomAccessibilityInstances) {
  util::Rng rng(0x123 + GetParam());
  std::string facts = "s(n0). s(n1).";
  for (int i = 0; i < 10; ++i) {
    facts += "t(n" + std::to_string(rng.UniformInt(5)) + ", n" +
             std::to_string(rng.UniformInt(5)) + ", n" +
             std::to_string(rng.UniformInt(5)) + ").";
  }
  Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                              facts.c_str());
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::PredicateId a = w.symbols->FindPredicate("a").value();
  for (dl::FactId target : model.Relation(a)) {
    const DownwardClosure closure =
        DownwardClosure::Build(w.program, model, target);
    // Independent min-depth DP over the closure (facts of rank 0 have
    // depth 0; otherwise 1 + min over hyperedges of the max body depth).
    std::map<dl::FactId, int> depth;
    bool changed = true;
    while (changed) {
      changed = false;
      for (dl::FactId fact : closure.nodes()) {
        if (model.rank(fact) == 0) {
          if (!depth.contains(fact)) {
            depth[fact] = 0;
            changed = true;
          }
          continue;
        }
        int best = -1;
        for (std::size_t e : closure.EdgesWithHead(fact)) {
          int worst = 0;
          bool all_known = true;
          for (dl::FactId body : closure.edges()[e].body) {
            auto it = depth.find(body);
            if (it == depth.end()) {
              all_known = false;
              break;
            }
            worst = std::max(worst, it->second);
          }
          if (all_known && (best < 0 || worst + 1 < best)) best = worst + 1;
        }
        if (best >= 0 && (!depth.contains(fact) || depth[fact] > best)) {
          depth[fact] = best;
          changed = true;
        }
      }
    }
    ASSERT_TRUE(depth.contains(target));
    EXPECT_EQ(depth[target], model.rank(target))
        << dl::FactToString(model.fact(target), *w.symbols);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankIsMinDagDepthTest,
                         ::testing::Range(0, 10));

// End-to-end on every scenario generator: each enumerated member must be
// re-derivable (membership check accepts it) and the reconstructed proof
// tree must validate and be unambiguous.
class ScenarioRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioRoundTripTest, MembersRederiveAndUnravel) {
  const int which = GetParam();
  sc::GeneratedScenario scenario = [&] {
    switch (which) {
      case 0:
        return sc::MakeTransClosure(sc::GraphKind::kSparse, 60, 90, 3);
      case 1:
        return sc::MakeTransClosure(sc::GraphKind::kSocial, 48, 140, 3);
      case 2:
        return sc::MakeDoctors(1, 60, 3);
      case 3:
        return sc::MakeGalen(30, 3);
      case 4:
        return sc::MakeAndersen(80, 3);
      default:
        return sc::MakeCsda("httpd", 120, 3);
    }
  }();
  const whyprov::Engine pipeline = scenario.MakeEngine();
  ASSERT_FALSE(pipeline.AnswerFactIds().empty());
  util::Rng rng(17);
  for (dl::FactId target : pipeline.SampleAnswers(2, rng)) {
    auto enumerator = std::make_unique<WhyProvenanceEnumerator>(
        pipeline.program(), pipeline.model(), target);
    std::size_t count = 0;
    for (auto member = enumerator->Next();
         member.has_value() && count < 5; member = enumerator->Next()) {
      ++count;
      // Membership: the SAT decision procedure must accept each member.
      EXPECT_TRUE(IsWhyUnMemberSat(pipeline.program(), pipeline.model(),
                                   target, *member));
      // Witness: the compressed DAG unravels to a valid unambiguous tree
      // whose support is the member.
      const CompressedDag dag(&enumerator->closure(),
                              enumerator->last_witness_choices());
      auto tree = dag.UnravelToProofTree(pipeline.program(),
                                         pipeline.model(), 1u << 16);
      if (!tree.ok()) continue;  // node budget: skip giant unravellings
      util::Status valid =
          tree.value().Validate(pipeline.program(), pipeline.database(),
                                pipeline.model().fact(target));
      EXPECT_TRUE(valid.ok()) << valid.message();
      EXPECT_TRUE(tree.value().IsUnambiguous());
      const std::set<dl::Fact> support_set = tree.value().Support();
      std::vector<dl::Fact> support(support_set.begin(), support_set.end());
      std::sort(support.begin(), support.end());
      EXPECT_EQ(support, *member);
    }
    EXPECT_GT(count, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioRoundTripTest,
                         ::testing::Range(0, 6));

// For non-recursive queries, all four proof-tree classes coincide on
// *every* family member when the program is also linear: trees are paths
// of joins, so any proof tree is trivially unambiguous and non-recursive.
TEST(NonRecursiveClassCollapseTest, DoctorsFamiliesAgree) {
  sc::GeneratedScenario scenario = sc::MakeDoctors(1, 50, 5);
  const whyprov::Engine pipeline = scenario.MakeEngine();
  util::Rng rng(23);
  for (dl::FactId target : pipeline.SampleAnswers(3, rng)) {
    auto any = EnumerateWhyExhaustive(pipeline.program(), pipeline.model(),
                                      target, TreeClass::kAny);
    auto un = EnumerateWhyExhaustive(pipeline.program(), pipeline.model(),
                                     target, TreeClass::kUnambiguous);
    auto nr = EnumerateWhyExhaustive(pipeline.program(), pipeline.model(),
                                     target, TreeClass::kNonRecursive);
    auto md = EnumerateWhyExhaustive(pipeline.program(), pipeline.model(),
                                     target, TreeClass::kMinimalDepth);
    ASSERT_TRUE(any.ok() && un.ok() && nr.ok() && md.ok());
    EXPECT_EQ(any.value(), un.value());
    EXPECT_EQ(any.value(), nr.value());
    EXPECT_EQ(any.value(), md.value());
    // And the SAT enumerator agrees with all of them.
    WhyProvenanceEnumerator enumerator(pipeline.program(), pipeline.model(),
                                       target);
    ProvenanceFamily sat_family;
    for (auto member = enumerator.Next(); member.has_value();
         member = enumerator.Next()) {
      sat_family.insert(*member);
    }
    EXPECT_EQ(sat_family, any.value());
  }
}

// The FO rewriting of a Doctors query decides membership identically to
// the SAT pipeline (Theorem 9 meets Theorem 14 on NRDat).
TEST(FoVsSatTest, DoctorsAgreement) {
  sc::GeneratedScenario scenario = sc::MakeDoctors(2, 40, 9);
  const whyprov::Engine pipeline = scenario.MakeEngine();
  const dl::PredicateId ans =
      scenario.symbols->FindPredicate("ans").value();
  auto rewriting = FoRewriting::Build(pipeline.program(), ans);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().message();
  util::Rng rng(31);
  for (dl::FactId target : pipeline.SampleAnswers(3, rng)) {
    auto enumerator = std::make_unique<WhyProvenanceEnumerator>(
        pipeline.program(), pipeline.model(), target);
    for (auto member = enumerator->Next(); member.has_value();
         member = enumerator->Next()) {
      dl::Database dprime(scenario.symbols);
      for (const dl::Fact& fact : *member) dprime.Insert(fact);
      EXPECT_TRUE(rewriting.value().Decide(
          dprime, pipeline.model().fact(target).args));
      // Dropping any single fact must break membership (members are
      // supports of actual trees; every fact is used).
      for (std::size_t skip = 0; skip < member->size(); ++skip) {
        dl::Database smaller(scenario.symbols);
        for (std::size_t i = 0; i < member->size(); ++i) {
          if (i != skip) smaller.Insert((*member)[i]);
        }
        EXPECT_FALSE(rewriting.value().Decide(
            smaller, pipeline.model().fact(target).args));
      }
    }
  }
}

// The baseline family always contains every SAT-enumerated member, and on
// linear recursive scenarios (CSDA) the inclusion can be strict.
TEST(BaselineInclusionTest, CsdaWhyContainsWhyUn) {
  sc::GeneratedScenario scenario = sc::MakeCsda("httpd", 150, 13);
  const whyprov::Engine pipeline = scenario.MakeEngine();
  util::Rng rng(37);
  for (dl::FactId target : pipeline.SampleAnswers(3, rng)) {
    BaselineLimits limits;
    limits.max_family_size = 1u << 14;
    limits.max_combinations = 1u << 22;
    auto why = ComputeWhyAllAtOnce(pipeline.program(), pipeline.model(),
                                   target, limits);
    if (!why.ok()) continue;  // family too large for the reference: skip
    WhyProvenanceEnumerator enumerator(pipeline.program(), pipeline.model(),
                                       target);
    std::size_t members = 0;
    for (auto member = enumerator.Next();
         member.has_value() && members < 200; member = enumerator.Next()) {
      ++members;
      EXPECT_TRUE(why.value().contains(*member));
    }
  }
}

}  // namespace
}  // namespace whyprov::provenance
