// Tests of the wire protocol and the TCP serving tier (src/net/): frame
// encode/decode round trips for every frame kind, rejection of
// truncated/oversized/malformed/unknown frames, and the server over a
// real loopback socket — byte-identical results vs the in-process
// engine across the scenario generators, streaming member batches,
// wire deadlines, submission-order responses, protocol-violation
// handling, and the mid-stream client disconnect that must cancel the
// enumeration and release its pinned model snapshot.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "net/whyprov_c.h"
#include "net/wire.h"
#include "scenarios/scenarios.h"
#include "whyprov.h"

namespace whyprov::net {
namespace {

constexpr const char* kDiamondProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDiamondDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(a, m3). edge(m3, b).
  edge(a, m4). edge(m4, b).
  edge(a, m5). edge(m5, b).
  edge(a, m6). edge(m6, b).
)";
constexpr std::size_t kDiamondMembers = 6;
constexpr const char* kTarget = "path(a, b)";

// --- wire round trips ------------------------------------------------------

TEST(WireRoundTripTest, EnumerateFrame) {
  EnumerateFrame frame;
  frame.request_id = 0x0123456789abcdefULL;
  frame.target = "path(a, b)";
  frame.max_members = 42;
  frame.deadline_seconds = 1.5;
  frame.stream = 1;
  frame.batch_size = 7;
  auto decoded = DecodeEnumerate(Encode(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().target, frame.target);
  EXPECT_EQ(decoded.value().max_members, frame.max_members);
  EXPECT_EQ(decoded.value().deadline_seconds, frame.deadline_seconds);
  EXPECT_EQ(decoded.value().stream, frame.stream);
  EXPECT_EQ(decoded.value().batch_size, frame.batch_size);
}

TEST(WireRoundTripTest, DecideFrame) {
  DecideFrame frame;
  frame.request_id = 7;
  frame.target = "path(a, b)";
  frame.tree_class = WHYPROV_TREE_MINIMAL_DEPTH;
  frame.candidate_facts = {"edge(a, m1)", "edge(m1, b)"};
  frame.deadline_seconds = -1.0;  // negative survives the f64 bit cast
  auto decoded = DecodeDecide(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().target, frame.target);
  EXPECT_EQ(decoded.value().tree_class, frame.tree_class);
  EXPECT_EQ(decoded.value().candidate_facts, frame.candidate_facts);
  EXPECT_EQ(decoded.value().deadline_seconds, frame.deadline_seconds);
}

TEST(WireRoundTripTest, ExplainFrame) {
  ExplainFrame frame;
  frame.request_id = 9;
  frame.target = "a(d)";
  frame.member_index = 3;
  frame.deadline_seconds = 0.25;
  auto decoded = DecodeExplain(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().target, frame.target);
  EXPECT_EQ(decoded.value().member_index, frame.member_index);
  EXPECT_EQ(decoded.value().deadline_seconds, frame.deadline_seconds);
}

TEST(WireRoundTripTest, DeltaFrame) {
  DeltaFrame frame;
  frame.request_id = 11;
  frame.added_facts = {"edge(x, y)"};
  frame.removed_facts = {"edge(a, m1)", "edge(a, m2)"};
  auto decoded = DecodeDelta(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().added_facts, frame.added_facts);
  EXPECT_EQ(decoded.value().removed_facts, frame.removed_facts);
}

TEST(WireRoundTripTest, StatsFrame) {
  StatsFrame frame;
  frame.request_id = 13;
  auto decoded = DecodeStats(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
}

TEST(WireRoundTripTest, MembersFrame) {
  MembersFrame frame;
  frame.request_id = 17;
  frame.members = {{"edge(a, m1)", "edge(m1, b)"}, {"edge(a, m2)"}, {}};
  auto decoded = DecodeMembers(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().members, frame.members);
}

TEST(WireRoundTripTest, FinalFrameEnumerateKind) {
  FinalFrame frame;
  frame.request_id = 19;
  frame.status_code = WHYPROV_OK;
  frame.status_message = "";
  frame.kind = kFrameEnumerate;
  frame.model_version = 3;
  frame.members_emitted = 2;
  frame.enumerate_flags = WHYPROV_ENUM_EXHAUSTED;
  frame.members = {{"edge(a, m1)", "edge(m1, b)"}, {"edge(a, m2)"}};
  auto decoded = DecodeFinal(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().kind, frame.kind);
  EXPECT_EQ(decoded.value().model_version, frame.model_version);
  EXPECT_EQ(decoded.value().members_emitted, frame.members_emitted);
  EXPECT_EQ(decoded.value().enumerate_flags, frame.enumerate_flags);
  EXPECT_EQ(decoded.value().members, frame.members);
}

TEST(WireRoundTripTest, FinalFrameDecideKind) {
  FinalFrame frame;
  frame.request_id = 23;
  frame.kind = kFrameDecide;
  frame.verdict = 1;
  auto decoded = DecodeFinal(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, kFrameDecide);
  EXPECT_EQ(decoded.value().verdict, 1);
}

TEST(WireRoundTripTest, FinalFrameExplainKind) {
  FinalFrame frame;
  frame.request_id = 29;
  frame.kind = kFrameExplain;
  frame.status_code = WHYPROV_OK;
  frame.has_explanation = 1;
  frame.explanation_member = {"edge(a, m1)", "edge(m1, b)"};
  frame.proof_tree = "path(a, b)\n  edge(a, m1)\n";
  auto decoded = DecodeFinal(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().has_explanation, 1);
  EXPECT_EQ(decoded.value().explanation_member, frame.explanation_member);
  EXPECT_EQ(decoded.value().proof_tree, frame.proof_tree);
}

TEST(WireRoundTripTest, FinalFrameDeltaKind) {
  FinalFrame frame;
  frame.request_id = 31;
  frame.kind = kFrameDelta;
  frame.status_code = WHYPROV_RESOURCE_EXHAUSTED;
  frame.status_message = "queue full";
  frame.has_delta = 1;
  frame.delta.model_version = 4;
  frame.delta.facts_removed = 2;
  frame.delta.plans_invalidated = 5;
  auto decoded = DecodeFinal(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status_code, WHYPROV_RESOURCE_EXHAUSTED);
  EXPECT_EQ(decoded.value().status_message, "queue full");
  EXPECT_EQ(decoded.value().has_delta, 1);
  EXPECT_EQ(decoded.value().delta.model_version, 4u);
  EXPECT_EQ(decoded.value().delta.facts_removed, 2u);
  EXPECT_EQ(decoded.value().delta.plans_invalidated, 5u);
}

TEST(WireRoundTripTest, ErrorFrame) {
  ErrorFrame frame;
  frame.request_id = 0;
  frame.status_code = WHYPROV_INVALID_ARGUMENT;
  frame.message = "unknown frame type 127";
  auto decoded = DecodeError(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status_code, frame.status_code);
  EXPECT_EQ(decoded.value().message, frame.message);
}

TEST(WireRoundTripTest, StatsReplyFrame) {
  StatsReplyFrame frame;
  frame.request_id = 37;
  frame.stats.submitted = 100;
  frame.stats.completed = 90;
  frame.stats.queries_per_second = 123.5;
  frame.stats.model_version = 7;
  frame.stats.retained_snapshots = 2;
  frame.stats.snapshot_alarm = 1;
  frame.stats.num_shards = 4;
  auto decoded = DecodeStatsReply(Encode(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().stats.submitted, 100u);
  EXPECT_EQ(decoded.value().stats.completed, 90u);
  EXPECT_EQ(decoded.value().stats.queries_per_second, 123.5);
  EXPECT_EQ(decoded.value().stats.model_version, 7u);
  EXPECT_EQ(decoded.value().stats.retained_snapshots, 2u);
  EXPECT_EQ(decoded.value().stats.snapshot_alarm, 1);
  EXPECT_EQ(decoded.value().stats.num_shards, 4u);
}

// --- wire rejection paths --------------------------------------------------

TEST(WireRejectionTest, EveryTruncationOfABodyFails) {
  EnumerateFrame enumerate;
  enumerate.request_id = 1;
  enumerate.target = "path(a, b)";
  enumerate.batch_size = 3;
  const std::string body = Encode(enumerate);
  // One truncation point is valid by design: cutting exactly before the
  // appended QoS identity tail (u8 qos_class + empty tenant string =
  // 5 bytes) yields a well-formed pre-QoS frame, which must keep
  // decoding (with the default identity) for backward compatibility.
  // Every other prefix fails.
  const std::size_t pre_qos_size = body.size() - 5;
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_EQ(DecodeEnumerate(body.substr(0, cut)).ok(),
              cut == pre_qos_size)
        << "prefix of " << cut << " bytes";
  }

  FinalFrame final;
  final.request_id = 2;
  final.kind = kFrameEnumerate;
  final.members = {{"edge(a, m1)", "edge(m1, b)"}};
  const std::string final_body = Encode(final);
  for (std::size_t cut = 0; cut < final_body.size(); ++cut) {
    EXPECT_FALSE(DecodeFinal(final_body.substr(0, cut)).ok());
  }
}

TEST(WireRejectionTest, TrailingGarbageFails) {
  StatsFrame frame;
  frame.request_id = 5;
  EXPECT_FALSE(DecodeStats(Encode(frame) + "x").ok());
  DeltaFrame delta;
  delta.request_id = 6;
  delta.added_facts = {"edge(a, b)"};
  EXPECT_FALSE(DecodeDelta(Encode(delta) + std::string(1, '\0')).ok());
}

TEST(WireRejectionTest, HostileListCountFailsWithoutAllocating) {
  // request_id, then a string-list count of ~4 billion with no elements:
  // the reader must reject the count against the remaining bytes instead
  // of trying to reserve for it.
  WireWriter writer;
  writer.PutU64(1);
  writer.PutU32(0xfffffff0u);
  EXPECT_FALSE(DecodeDelta(writer.buffer()).ok());
  WireWriter members;
  members.PutU64(2);
  members.PutU32(0xfffffff0u);
  EXPECT_FALSE(DecodeMembers(members.buffer()).ok());
}

TEST(WireRejectionTest, NonCanonicalStatsReplyAlarmFails) {
  // Shrunken fuzzer finding: a stats reply whose snapshot_alarm byte is
  // 2 used to decode successfully (as "alarm set") but re-encode as 1,
  // violating the encode/decode symmetry the protocol documents. The
  // encoder only writes 0 or 1; anything else is now malformed.
  StatsReplyFrame frame;
  frame.request_id = 9;
  frame.stats.snapshot_alarm = true;
  std::string body = Encode(frame);
  // The alarm flag sits after request_id, ten u64 counters, the f64
  // rate, and four more u64s: 8 + 80 + 8 + 32 = byte 128.
  ASSERT_EQ(body[128], 1);
  EXPECT_TRUE(DecodeStatsReply(body).ok());
  body[128] = 2;
  EXPECT_FALSE(DecodeStatsReply(body).ok());
}

TEST(WireRejectionTest, UnknownFinalKindFails) {
  WireWriter writer;
  writer.PutU64(1);   // request_id
  writer.PutU8(0);    // status
  writer.PutString(""); // message
  writer.PutU8(0x66);   // kind: not a request type
  writer.PutU64(0);     // model_version
  EXPECT_FALSE(DecodeFinal(writer.buffer()).ok());
}

// --- the served stack ------------------------------------------------------

/// RAII bundle of whyprov_service_create + Server on an ephemeral port.
struct ServedStack {
  explicit ServedStack(const std::string& program,
                       const std::string& database,
                       const std::string& answer = "path",
                       const whyprov_options* options = nullptr,
                       ServerOptions server_options = ServerOptions()) {
    char error[256] = {0};
    if (whyprov_service_create(program.c_str(), database.c_str(),
                               answer.c_str(), options, &service, error,
                               sizeof(error)) != WHYPROV_OK) {
      ADD_FAILURE() << "service create failed: " << error;
      return;
    }
    server = std::make_unique<Server>(service, server_options);
    const auto started = server->Start(0);
    if (!started.ok()) {
      ADD_FAILURE() << "server start failed: " << started.message();
      server.reset();
    }
  }
  ~ServedStack() {
    if (server) server->Stop();
    whyprov_service_destroy(service);
  }
  ServedStack(const ServedStack&) = delete;
  ServedStack& operator=(const ServedStack&) = delete;

  bool ok() const { return service != nullptr && server != nullptr; }
  std::uint16_t port() const { return server->port(); }

  whyprov_service* service = nullptr;
  std::unique_ptr<Server> server;
};

Client MustConnect(const ServedStack& stack) {
  auto client = Client::Connect("127.0.0.1", stack.port());
  EXPECT_TRUE(client.ok()) << client.status().message();
  return client.ok() ? std::move(client).value() : Client();
}

// --- loopback vs in-process equivalence ------------------------------------

/// The in-process reference: the family of `target` enumerated directly
/// by the engine, rendered to the same text the ABI emits.
std::vector<std::vector<std::string>> ReferenceFamily(
    Engine& engine, const std::string& target, std::size_t max_members) {
  EnumerateRequest request;
  request.target_text = target;
  request.max_members = max_members;
  auto enumeration = engine.Enumerate(request);
  EXPECT_TRUE(enumeration.ok()) << enumeration.status().message();
  std::vector<std::vector<std::string>> family;
  if (!enumeration.ok()) return family;
  for (auto member = enumeration.value().Next(); member.has_value();
       member = enumeration.value().Next()) {
    std::vector<std::string> rendered;
    rendered.reserve(member->size());
    for (const auto& fact : *member) {
      rendered.push_back(engine.FactToText(fact));
    }
    family.push_back(std::move(rendered));
  }
  return family;
}

TEST(NetEquivalenceTest, LoopbackMatchesInProcessAcrossScenarios) {
  constexpr std::uint64_t kSeed = 20240611;
  constexpr std::size_t kCap = 4;  // same cap both sides => same prefix
  namespace sc = whyprov::scenarios;
  struct Case {
    const char* name;
    std::function<sc::GeneratedScenario()> make;
  };
  const std::vector<Case> cases = {
      {"TransClosure/sparse",
       [] {
         return sc::MakeTransClosure(sc::GraphKind::kSparse, 40, 60, kSeed);
       }},
      {"TransClosure/social",
       [] {
         return sc::MakeTransClosure(sc::GraphKind::kSocial, 16, 24, kSeed);
       }},
      {"Doctors", [] { return sc::MakeDoctors(1, 60, kSeed); }},
      {"Galen", [] { return sc::MakeGalen(20, kSeed); }},
      {"Andersen", [] { return sc::MakeAndersen(80, kSeed); }},
      {"CSDA", [] { return sc::MakeCsda("httpd", 120, kSeed); }},
  };

  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    const sc::GeneratedScenario scenario = test_case.make();
    const std::string program_text = scenario.program.ToString();
    const std::string database_text = scenario.database.ToString();

    // In-process reference engine, built from the exact text the server
    // gets, so symbol ids — and therefore rendering and enumeration
    // order — are decided identically on both sides.
    auto reference = Engine::FromText(program_text, database_text,
                                      scenario.answer_predicate);
    ASSERT_TRUE(reference.ok()) << reference.status().message();
    std::vector<std::string> targets;
    for (datalog::FactId id : reference.value().SampleAnswers(2)) {
      targets.push_back(reference.value().FactToText(id));
    }
    ASSERT_FALSE(targets.empty());

    ServedStack stack(program_text, database_text,
                      scenario.answer_predicate);
    ASSERT_TRUE(stack.ok());
    Client client = MustConnect(stack);
    ASSERT_TRUE(client.connected());

    for (const std::string& target : targets) {
      SCOPED_TRACE(target);
      const auto expected =
          ReferenceFamily(reference.value(), target, kCap);

      auto materialised = client.Enumerate(target, kCap);
      ASSERT_TRUE(materialised.ok()) << materialised.status().message();
      ASSERT_TRUE(materialised.value().ok())
          << materialised.value().final.status_message;
      EXPECT_EQ(materialised.value().final.members, expected);

      auto streamed = client.Enumerate(target, kCap, /*deadline=*/0,
                                       /*stream=*/true, /*batch_size=*/1);
      ASSERT_TRUE(streamed.ok()) << streamed.status().message();
      ASSERT_TRUE(streamed.value().ok());
      EXPECT_EQ(streamed.value().streamed_members, expected);
      EXPECT_TRUE(streamed.value().final.members.empty());
      EXPECT_EQ(streamed.value().final.members_emitted, expected.size());
    }
  }
}

// --- serving behaviour over the socket -------------------------------------

TEST(NetServerTest, FullVerbSurfaceOverOneConnection) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);

  auto enumerated = client.Enumerate(kTarget);
  ASSERT_TRUE(enumerated.ok());
  ASSERT_TRUE(enumerated.value().ok());
  EXPECT_EQ(enumerated.value().final.members.size(), kDiamondMembers);
  EXPECT_TRUE(enumerated.value().final.enumerate_flags &
              WHYPROV_ENUM_EXHAUSTED);

  auto decided = client.Decide(
      kTarget, enumerated.value().final.members.front());
  ASSERT_TRUE(decided.ok());
  EXPECT_EQ(decided.value().final.verdict, 1);

  auto explained = client.Explain(kTarget, 0);
  ASSERT_TRUE(explained.ok());
  ASSERT_TRUE(explained.value().ok());
  EXPECT_EQ(explained.value().final.has_explanation, 1);
  EXPECT_FALSE(explained.value().final.proof_tree.empty());

  auto delta = client.ApplyDelta({}, {"edge(a, m1)"});
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(delta.value().ok());
  EXPECT_EQ(delta.value().final.has_delta, 1);
  EXPECT_EQ(delta.value().final.delta.model_version, 1u);

  auto after = client.Enumerate(kTarget);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().final.members.size(), kDiamondMembers - 1);
  EXPECT_EQ(after.value().final.model_version, 1u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_GE(stats.value().submitted, 5u);
  EXPECT_EQ(stats.value().model_version, 1u);
  EXPECT_EQ(stats.value().num_shards, 1u);
}

TEST(NetServerTest, ShardedServiceServesTheSameWire) {
  whyprov_options options;
  whyprov_options_init(&options);
  options.num_shards = 2;
  ServedStack stack(kDiamondProgram, kDiamondDatabase, "path", &options);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);
  auto outcome = client.Enumerate(kTarget);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().ok());
  EXPECT_EQ(outcome.value().final.members.size(), kDiamondMembers);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_shards, 2u);
}

TEST(NetServerTest, PipelinedResponsesArriveInSubmissionOrder) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);
  // Fire four requests back to back, then read their finals: the server
  // must answer in submission order (AwaitFinal fails on any other id).
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    EnumerateFrame frame;
    frame.request_id = client.NextRequestId();
    frame.target = kTarget;
    frame.max_members = 1 + static_cast<std::uint64_t>(i % 2);
    ASSERT_TRUE(client.Send(frame).ok());
    ids.push_back(frame.request_id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto outcome = client.AwaitFinal(ids[i]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_EQ(outcome.value().final.members.size(), 1 + i % 2);
  }
}

TEST(NetServerTest, FailedRequestLeavesTheConnectionUsable) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);
  // An unresolvable target fails the request — as a final frame, not a
  // connection error.
  auto bad = client.Enumerate("path(nosuch, nodes)");
  ASSERT_TRUE(bad.ok()) << bad.status().message();
  EXPECT_FALSE(bad.value().ok());
  EXPECT_FALSE(bad.value().final.status_message.empty());
  // The session keeps serving.
  auto good = client.Enumerate(kTarget, 1);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().ok());
}

TEST(NetServerTest, WireDeadlinePropagatesToTheCancellationToken) {
  whyprov_options options;
  whyprov_options_init(&options);
  options.num_threads = 1;
  ServedStack stack(kDiamondProgram, kDiamondDatabase, "path", &options);
  ASSERT_TRUE(stack.ok());

  // Park the single worker from the ABI side: a capacity-1 streaming
  // enumeration nobody consumes blocks its producer deterministically.
  whyprov_ticket* blocker = nullptr;
  ASSERT_EQ(whyprov_submit_enumerate(stack.service, kTarget, 0, 0,
                                     /*stream_capacity=*/1, &blocker),
            WHYPROV_OK);

  // Low-level pipelining: the synchronous Enumerate would block on the
  // final frame, which cannot come until the blocker is destroyed — so
  // send the doomed request first, release the worker, then await.
  Client client = MustConnect(stack);
  EnumerateFrame doomed;
  doomed.request_id = client.NextRequestId();
  doomed.target = kTarget;
  doomed.deadline_seconds = 1e-9;  // expired by the time any worker looks
  ASSERT_TRUE(client.Send(doomed).ok());

  whyprov_ticket_destroy(blocker);  // closes the stream; worker resumes
  auto outcome = client.AwaitFinal(doomed.request_id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().code(), WHYPROV_DEADLINE_EXCEEDED);
}

// --- protocol violations ---------------------------------------------------

TEST(NetProtocolTest, MalformedBodyIsAnsweredAfterOwedResponses) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);

  EnumerateFrame owed;
  owed.request_id = client.NextRequestId();
  owed.target = kTarget;
  owed.max_members = 1;
  ASSERT_TRUE(client.Send(owed).ok());
  ASSERT_TRUE(client.SendRaw(kFrameDecide, "not a decide body").ok());

  // First the final frame the valid request is owed...
  auto outcome = client.AwaitFinal(owed.request_id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome.value().ok());

  // ...then the connection-level error frame, then EOF.
  std::uint8_t type = 0;
  std::string body;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &body).ok());
  EXPECT_EQ(type, kFrameError);
  auto error = DecodeError(body);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().status_code, WHYPROV_INVALID_ARGUMENT);
  EXPECT_EQ(client.ReadFrameRaw(&type, &body).code(),
            util::StatusCode::kNotFound);
}

TEST(NetProtocolTest, UnknownFrameTypeIsRejected) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);
  ASSERT_TRUE(client.SendRaw(0x7f, "").ok());
  std::uint8_t type = 0;
  std::string body;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &body).ok());
  EXPECT_EQ(type, kFrameError);
  auto error = DecodeError(body);
  ASSERT_TRUE(error.ok());
  EXPECT_NE(error.value().message.find("unknown frame type"),
            std::string::npos);
}

TEST(NetProtocolTest, OversizedFrameIsRejectedBeforeItIsRead) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);
  // A hand-built length prefix over the cap: the server must refuse on
  // the prefix alone, never allocating or waiting for the body.
  const std::uint32_t length = kMaxFrameBytes + 1;
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(length & 0xff),
      static_cast<std::uint8_t>((length >> 8) & 0xff),
      static_cast<std::uint8_t>((length >> 16) & 0xff),
      static_cast<std::uint8_t>((length >> 24) & 0xff),
  };
  ASSERT_TRUE(client.SendBytes(prefix, sizeof(prefix)).ok());
  std::uint8_t type = 0;
  std::string body;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &body).ok());
  EXPECT_EQ(type, kFrameError);
  auto error = DecodeError(body);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().status_code, WHYPROV_INVALID_ARGUMENT);
}

TEST(NetProtocolTest, ZeroLengthFrameIsRejected) {
  ServedStack stack(kDiamondProgram, kDiamondDatabase);
  ASSERT_TRUE(stack.ok());
  Client client = MustConnect(stack);
  const std::uint8_t prefix[4] = {0, 0, 0, 0};
  ASSERT_TRUE(client.SendBytes(prefix, sizeof(prefix)).ok());
  std::uint8_t type = 0;
  std::string body;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &body).ok());
  EXPECT_EQ(type, kFrameError);
}

// --- disconnects and shutdown ----------------------------------------------

TEST(NetDisconnectTest, MidStreamDisconnectReleasesThePinnedSnapshot) {
  // A wide diamond: enough members that the streamed enumeration is
  // still in flight when the delta lands (each attempt that loses that
  // race restores the database and retries).
  constexpr std::size_t kRoutes = 48;
  std::string database;
  for (std::size_t i = 0; i < kRoutes; ++i) {
    const std::string mid = "r" + std::to_string(i);
    database += "edge(a, " + mid + "). edge(" + mid + ", b).\n";
  }
  whyprov_options options;
  whyprov_options_init(&options);
  options.num_threads = 2;  // the delta must run beside the enumeration
  ServedStack stack(kDiamondProgram, database, "path", &options);
  ASSERT_TRUE(stack.ok());

  const auto retained = [&] {
    whyprov_stats stats;
    whyprov_service_stats(stack.service, &stats);
    return stats.retained_snapshots;
  };

  bool pinned = false;
  for (int attempt = 0; attempt < 25 && !pinned; ++attempt) {
    Client victim = MustConnect(stack);
    EnumerateFrame frame;
    frame.request_id = 1;
    frame.target = kTarget;
    frame.stream = 1;
    frame.batch_size = 1;
    ASSERT_TRUE(victim.Send(frame).ok());
    // One member batch guarantees the enumeration started (and pinned
    // the current model snapshot).
    std::uint8_t type = 0;
    std::string body;
    ASSERT_TRUE(victim.ReadFrameRaw(&type, &body).ok());
    ASSERT_EQ(type, kFrameMembers);

    Client writer = MustConnect(stack);
    auto delta = writer.ApplyDelta({}, {"edge(a, r0)"});
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(delta.value().ok());

    if (retained() >= 2) {
      // The enumeration's snapshot outlived the delta: now vanish
      // mid-stream. The server's reader sees EOF and cancels the
      // ticket, which must release the pin.
      pinned = true;
      victim.Close();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (retained() > 1 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      EXPECT_EQ(retained(), 1u)
          << "disconnect did not release the pinned snapshot";
    } else {
      // The enumeration finished before the delta; reset and retry.
      victim.Close();
      auto restore = writer.ApplyDelta({"edge(a, r0)"}, {});
      ASSERT_TRUE(restore.ok());
    }
  }
  EXPECT_TRUE(pinned)
      << "the enumeration never overlapped the delta in 25 attempts";
}

TEST(NetServerTest, StopClosesLiveSessionsAndJoins) {
  auto stack = std::make_unique<ServedStack>(kDiamondProgram,
                                             kDiamondDatabase);
  ASSERT_TRUE(stack->ok());
  Client client = MustConnect(*stack);
  auto warm = client.Enumerate(kTarget, 1);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(stack->server->connections_accepted(), 1u);

  stack->server->Stop();
  // The connection is gone: the next read reports EOF (or a reset).
  std::uint8_t type = 0;
  std::string body;
  EXPECT_FALSE(client.ReadFrameRaw(&type, &body).ok());
  // Stop is idempotent, and destruction after Stop is clean.
  stack->server->Stop();
  stack.reset();
}

}  // namespace
}  // namespace whyprov::net
