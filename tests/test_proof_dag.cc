// Tests for proof DAGs (Definition 4), compressed DAGs (Definition 40),
// and the unravelling constructions.

#include <gtest/gtest.h>

#include "provenance/downward_closure.h"
#include "provenance/proof_dag.h"
#include "tests/workspace.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

Workspace PathAccessibility() {
  return MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                       R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
}

// The first proof DAG of Example 3: A(d) with both A-children shared.
//   A(d) -> A(a), A(a), T(a,a,d);  A(a) -> S(a).
ProofDag SimpleDag(const Workspace& w) {
  ProofDag dag(w.ParseFact("a(d)"));
  const std::size_t a = dag.AddNode(w.ParseFact("a(a)"));
  const std::size_t t = dag.AddNode(w.ParseFact("t(a, a, d)"));
  const std::size_t s = dag.AddNode(w.ParseFact("s(a)"));
  dag.AddEdge(0, a);
  dag.AddEdge(0, a);  // the rule uses a(a) twice
  dag.AddEdge(0, t);
  dag.AddEdge(a, s);
  return dag;
}

TEST(ProofDagTest, SimpleDagValidates) {
  const Workspace w = PathAccessibility();
  const ProofDag dag = SimpleDag(w);
  util::Status status =
      dag.Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(ProofDagTest, SupportAndDepth) {
  const Workspace w = PathAccessibility();
  const ProofDag dag = SimpleDag(w);
  const auto support = dag.Support();
  EXPECT_EQ(support.size(), 2u);
  EXPECT_TRUE(support.contains(w.ParseFact("s(a)")));
  EXPECT_TRUE(support.contains(w.ParseFact("t(a, a, d)")));
  EXPECT_EQ(dag.Depth(), 2u);
}

TEST(ProofDagTest, CyclicGraphIsInvalid) {
  const Workspace w = PathAccessibility();
  ProofDag dag(w.ParseFact("a(d)"));
  const std::size_t a = dag.AddNode(w.ParseFact("a(a)"));
  dag.AddEdge(0, a);
  dag.AddEdge(a, a);  // self-loop
  util::Status status =
      dag.Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_FALSE(status.ok());
}

TEST(ProofDagTest, SecondSourceIsInvalid) {
  const Workspace w = PathAccessibility();
  ProofDag dag(w.ParseFact("a(d)"));
  const std::size_t a = dag.AddNode(w.ParseFact("a(a)"));
  const std::size_t t = dag.AddNode(w.ParseFact("t(a, a, d)"));
  dag.AddEdge(0, a);
  dag.AddEdge(0, a);
  dag.AddEdge(0, t);
  const std::size_t s = dag.AddNode(w.ParseFact("s(a)"));
  dag.AddEdge(a, s);
  dag.AddNode(w.ParseFact("s(a)"));  // detached node: a second source
  util::Status status =
      dag.Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("second source"), std::string::npos);
}

TEST(ProofDagTest, UnravelPreservesRootSupportAndDepth) {
  const Workspace w = PathAccessibility();
  const ProofDag dag = SimpleDag(w);
  auto tree = dag.Unravel();
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->root(), dag.nodes()[0].fact);
  EXPECT_EQ(tree->Support(), dag.Support());
  EXPECT_EQ(tree->Depth(), dag.Depth());
  util::Status status =
      tree->Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(ProofDagTest, UnravelRespectsNodeBudget) {
  const Workspace w = PathAccessibility();
  const ProofDag dag = SimpleDag(w);
  EXPECT_FALSE(dag.Unravel(/*max_nodes=*/2).has_value());
}

TEST(ProofDagTest, NonRecursiveCheck) {
  const Workspace w = PathAccessibility();
  EXPECT_TRUE(SimpleDag(w).IsNonRecursive());
  // Build the paper's second (recursive) derivation as a DAG:
  // a(a) below a path through a(b) that reaches a(a) again is impossible in
  // a DAG without two nodes of the same label; simulate with two a(a) nodes.
  ProofDag dag(w.ParseFact("a(d)"));
  const std::size_t a_top = dag.AddNode(w.ParseFact("a(a)"));
  const std::size_t t_d = dag.AddNode(w.ParseFact("t(a, a, d)"));
  dag.AddEdge(0, a_top);
  dag.AddEdge(0, a_top);
  dag.AddEdge(0, t_d);
  const std::size_t b = dag.AddNode(w.ParseFact("a(b)"));
  const std::size_t c = dag.AddNode(w.ParseFact("a(c)"));
  const std::size_t t_a = dag.AddNode(w.ParseFact("t(b, c, a)"));
  dag.AddEdge(a_top, b);
  dag.AddEdge(a_top, c);
  dag.AddEdge(a_top, t_a);
  const std::size_t a_bottom = dag.AddNode(w.ParseFact("a(a)"));
  const std::size_t s = dag.AddNode(w.ParseFact("s(a)"));
  const std::size_t t_b = dag.AddNode(w.ParseFact("t(a, a, b)"));
  const std::size_t t_c = dag.AddNode(w.ParseFact("t(a, a, c)"));
  dag.AddEdge(b, a_bottom);
  dag.AddEdge(b, a_bottom);
  dag.AddEdge(b, t_b);
  dag.AddEdge(c, a_bottom);
  dag.AddEdge(c, a_bottom);
  dag.AddEdge(c, t_c);
  dag.AddEdge(a_bottom, s);
  util::Status status =
      dag.Validate(w.program, w.database, w.ParseFact("a(d)"));
  ASSERT_TRUE(status.ok()) << status.message();
  // a(a) appears twice on the path a(d) -> a(a) -> a(b) -> a(a).
  EXPECT_FALSE(dag.IsNonRecursive());
  EXPECT_EQ(dag.Support().size(), 5u);
}

// --- compressed DAGs over the downward closure ---

struct ClosureFixture {
  Workspace w;
  dl::Model model;
  DownwardClosure closure;
};

ClosureFixture MakeClosure(const char* target) {
  Workspace w = PathAccessibility();
  dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const dl::FactId id = *model.Find(w.ParseFact(target));
  DownwardClosure closure = DownwardClosure::Build(w.program, model, id);
  return ClosureFixture{std::move(w), std::move(model), std::move(closure)};
}

// Finds the closure hyperedge of `head` whose body is exactly `body`.
std::size_t EdgeOf(const ClosureFixture& f, const char* head,
                   const std::vector<const char*>& body) {
  const dl::FactId head_id = *f.model.Find(f.w.ParseFact(head));
  std::vector<dl::FactId> body_ids;
  for (const char* b : body) {
    body_ids.push_back(*f.model.Find(f.w.ParseFact(b)));
  }
  std::sort(body_ids.begin(), body_ids.end());
  for (std::size_t e : f.closure.EdgesWithHead(head_id)) {
    if (f.closure.edges()[e].body == body_ids) return e;
  }
  ADD_FAILURE() << "edge not found for " << head;
  return 0;
}

TEST(CompressedDagTest, ValidChoiceYieldsExpectedSupport) {
  const ClosureFixture f = MakeClosure("a(d)");
  std::unordered_map<dl::FactId, std::size_t> choice;
  choice[*f.model.Find(f.w.ParseFact("a(d)"))] =
      EdgeOf(f, "a(d)", {"a(a)", "t(a, a, d)"});
  choice[*f.model.Find(f.w.ParseFact("a(a)"))] = EdgeOf(f, "a(a)", {"s(a)"});
  const CompressedDag dag(&f.closure, choice);
  ASSERT_TRUE(dag.Validate().ok());
  auto support = dag.Support(f.model);
  ASSERT_TRUE(support.ok());
  EXPECT_EQ(support.value().size(), 2u);
}

TEST(CompressedDagTest, CyclicChoiceIsRejected) {
  const ClosureFixture f = MakeClosure("a(d)");
  // Derive a(a) through a(b), a(c), which both need a(a): a cycle.
  std::unordered_map<dl::FactId, std::size_t> choice;
  choice[*f.model.Find(f.w.ParseFact("a(d)"))] =
      EdgeOf(f, "a(d)", {"a(a)", "t(a, a, d)"});
  choice[*f.model.Find(f.w.ParseFact("a(a)"))] =
      EdgeOf(f, "a(a)", {"a(b)", "a(c)", "t(b, c, a)"});
  choice[*f.model.Find(f.w.ParseFact("a(b)"))] =
      EdgeOf(f, "a(b)", {"a(a)", "t(a, a, b)"});
  choice[*f.model.Find(f.w.ParseFact("a(c)"))] =
      EdgeOf(f, "a(c)", {"a(a)", "t(a, a, c)"});
  const CompressedDag dag(&f.closure, choice);
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(CompressedDagTest, MissingChoiceIsRejected) {
  const ClosureFixture f = MakeClosure("a(d)");
  std::unordered_map<dl::FactId, std::size_t> choice;
  choice[*f.model.Find(f.w.ParseFact("a(d)"))] =
      EdgeOf(f, "a(d)", {"a(a)", "t(a, a, d)"});
  // a(a) reachable but unchosen.
  const CompressedDag dag(&f.closure, choice);
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(CompressedDagTest, UnravelToProofTreeIsValidAndUnambiguous) {
  const ClosureFixture f = MakeClosure("a(d)");
  std::unordered_map<dl::FactId, std::size_t> choice;
  choice[*f.model.Find(f.w.ParseFact("a(d)"))] =
      EdgeOf(f, "a(d)", {"a(a)", "t(a, a, d)"});
  choice[*f.model.Find(f.w.ParseFact("a(a)"))] = EdgeOf(f, "a(a)", {"s(a)"});
  const CompressedDag dag(&f.closure, choice);
  auto tree = dag.UnravelToProofTree(f.w.program, f.model);
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  util::Status status = tree.value().Validate(f.w.program, f.w.database,
                                              f.w.ParseFact("a(d)"));
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_TRUE(tree.value().IsUnambiguous());
  // The rule a(X) :- a(Y), a(Z), t(Y,Z,X) re-expands a(a) twice.
  EXPECT_EQ(tree.value().nodes()[0].children.size(), 3u);
  const auto support = tree.value().Support();
  EXPECT_EQ(support.size(), 2u);
  EXPECT_TRUE(support.contains(f.w.ParseFact("s(a)")));
  EXPECT_TRUE(support.contains(f.w.ParseFact("t(a, a, d)")));
}

}  // namespace
}  // namespace whyprov::provenance
