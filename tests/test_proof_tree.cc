// Tests for proof trees (Definition 1) and the refined classes
// (Definitions 13, 18, 26), built around the paper's running example.

#include <gtest/gtest.h>

#include "provenance/proof_tree.h"
#include "tests/workspace.h"

namespace whyprov::provenance {
namespace {

using whyprov::testing::MakeWorkspace;
using whyprov::testing::Workspace;
namespace dl = whyprov::datalog;

// The paper's running example (Example 1): path accessibility.
Workspace PathAccessibility() {
  return MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                       R"(
    s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).
  )");
}

// The first (simple) proof tree of A(d) from Example 1:
//   A(d) <- A(a), A(a), T(a,a,d);  each A(a) <- S(a).
ProofTree SimpleTree(const Workspace& w) {
  ProofTree tree(w.ParseFact("a(d)"));
  const std::size_t a1 = tree.AddChild(0, w.ParseFact("a(a)"));
  const std::size_t a2 = tree.AddChild(0, w.ParseFact("a(a)"));
  tree.AddChild(0, w.ParseFact("t(a, a, d)"));
  tree.AddChild(a1, w.ParseFact("s(a)"));
  tree.AddChild(a2, w.ParseFact("s(a)"));
  return tree;
}

// The second (recursive) proof tree of A(d) from Example 1, in which A(a)
// is derived from A(b) and A(c), which are derived from A(a) again.
ProofTree RecursiveTree(const Workspace& w) {
  ProofTree tree(w.ParseFact("a(d)"));
  const std::size_t a1 = tree.AddChild(0, w.ParseFact("a(a)"));
  const std::size_t a2 = tree.AddChild(0, w.ParseFact("a(a)"));
  tree.AddChild(0, w.ParseFact("t(a, a, d)"));
  tree.AddChild(a1, w.ParseFact("s(a)"));
  const std::size_t b = tree.AddChild(a2, w.ParseFact("a(b)"));
  const std::size_t c = tree.AddChild(a2, w.ParseFact("a(c)"));
  tree.AddChild(a2, w.ParseFact("t(b, c, a)"));
  // a(b) <- a(a), a(a), t(a,a,b), both a(a) via s(a).
  const std::size_t ba1 = tree.AddChild(b, w.ParseFact("a(a)"));
  const std::size_t ba2 = tree.AddChild(b, w.ParseFact("a(a)"));
  tree.AddChild(b, w.ParseFact("t(a, a, b)"));
  tree.AddChild(ba1, w.ParseFact("s(a)"));
  tree.AddChild(ba2, w.ParseFact("s(a)"));
  // a(c) <- a(a), a(a), t(a,a,c), both a(a) via s(a).
  const std::size_t ca1 = tree.AddChild(c, w.ParseFact("a(a)"));
  const std::size_t ca2 = tree.AddChild(c, w.ParseFact("a(a)"));
  tree.AddChild(c, w.ParseFact("t(a, a, c)"));
  tree.AddChild(ca1, w.ParseFact("s(a)"));
  tree.AddChild(ca2, w.ParseFact("s(a)"));
  return tree;
}

TEST(ProofTreeTest, SimpleTreeValidates) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = SimpleTree(w);
  util::Status status =
      tree.Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(ProofTreeTest, SupportOfSimpleTreeMatchesExample2) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = SimpleTree(w);
  const auto support = tree.Support();
  EXPECT_EQ(support.size(), 2u);
  EXPECT_TRUE(support.contains(w.ParseFact("s(a)")));
  EXPECT_TRUE(support.contains(w.ParseFact("t(a, a, d)")));
}

TEST(ProofTreeTest, DepthOfSimpleTree) {
  const Workspace w = PathAccessibility();
  EXPECT_EQ(SimpleTree(w).Depth(), 2u);
}

TEST(ProofTreeTest, RootLabelMismatchIsInvalid) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = SimpleTree(w);
  util::Status status =
      tree.Validate(w.program, w.database, w.ParseFact("a(b)"));
  EXPECT_FALSE(status.ok());
}

TEST(ProofTreeTest, LeafOutsideDatabaseIsInvalid) {
  const Workspace w = PathAccessibility();
  ProofTree tree(w.ParseFact("a(d)"));
  tree.AddChild(0, w.ParseFact("s(d)"));  // s(d) is not in D
  util::Status status =
      tree.Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not a database fact"), std::string::npos);
}

TEST(ProofTreeTest, NodeWithoutRuleWitnessIsInvalid) {
  const Workspace w = PathAccessibility();
  ProofTree tree(w.ParseFact("a(d)"));
  // a(d) cannot be derived from s(a) alone by any rule.
  tree.AddChild(0, w.ParseFact("s(a)"));
  util::Status status =
      tree.Validate(w.program, w.database, w.ParseFact("a(d)"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not a rule instance"), std::string::npos);
}

TEST(ProofTreeTest, SimpleTreeIsNonRecursiveAndUnambiguous) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = SimpleTree(w);
  EXPECT_TRUE(tree.IsNonRecursive());
  EXPECT_TRUE(tree.IsUnambiguous());
  EXPECT_EQ(tree.SubtreeCount(), 1u);
}

TEST(ProofTreeTest, RecursiveTreeIsRecursiveAndAmbiguous) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = RecursiveTree(w);
  // a(a) appears on a path below another a(a).
  EXPECT_FALSE(tree.IsNonRecursive());
  // a(a) is derived in two different ways.
  EXPECT_FALSE(tree.IsUnambiguous());
  EXPECT_GE(tree.SubtreeCount(), 2u);
}

TEST(ProofTreeTest, RecursiveTreeSupportIsWholeDatabase) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = RecursiveTree(w);
  EXPECT_EQ(tree.Support().size(), w.database.size());
}

TEST(ProofTreeTest, MinimalDepthUsesModelRanks) {
  const Workspace w = PathAccessibility();
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const ProofTree simple = SimpleTree(w);
  // a(d) has rank 2: a(a) in round 1, a(d) in round 2.
  EXPECT_TRUE(simple.IsMinimalDepth(model));
  const ProofTree recursive = RecursiveTree(w);
  EXPECT_FALSE(recursive.IsMinimalDepth(model));
}

TEST(ProofTreeTest, InClassDispatch) {
  const Workspace w = PathAccessibility();
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  const ProofTree simple = SimpleTree(w);
  EXPECT_TRUE(simple.InClass(TreeClass::kAny, model));
  EXPECT_TRUE(simple.InClass(TreeClass::kNonRecursive, model));
  EXPECT_TRUE(simple.InClass(TreeClass::kMinimalDepth, model));
  EXPECT_TRUE(simple.InClass(TreeClass::kUnambiguous, model));
  const ProofTree recursive = RecursiveTree(w);
  EXPECT_TRUE(recursive.InClass(TreeClass::kAny, model));
  EXPECT_FALSE(recursive.InClass(TreeClass::kNonRecursive, model));
}

// Example 4 of the paper: a non-recursive, minimal-depth proof tree that is
// nevertheless ambiguous (A(c) derived in two ways).
TEST(ProofTreeTest, Example4AmbiguousTree) {
  const Workspace w = MakeWorkspace(R"(
    a(X) :- s(X).
    a(X) :- a(Y), a(Z), t(Y, Z, X).
  )",
                                    R"(
    s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).
  )");
  ProofTree tree(w.ParseFact("a(d)"));
  const std::size_t c1 = tree.AddChild(0, w.ParseFact("a(c)"));
  const std::size_t c2 = tree.AddChild(0, w.ParseFact("a(c)"));
  tree.AddChild(0, w.ParseFact("t(c, c, d)"));
  // First a(c) via a.
  const std::size_t a1 = tree.AddChild(c1, w.ParseFact("a(a)"));
  const std::size_t a2 = tree.AddChild(c1, w.ParseFact("a(a)"));
  tree.AddChild(c1, w.ParseFact("t(a, a, c)"));
  tree.AddChild(a1, w.ParseFact("s(a)"));
  tree.AddChild(a2, w.ParseFact("s(a)"));
  // Second a(c) via b.
  const std::size_t b1 = tree.AddChild(c2, w.ParseFact("a(b)"));
  const std::size_t b2 = tree.AddChild(c2, w.ParseFact("a(b)"));
  tree.AddChild(c2, w.ParseFact("t(b, b, c)"));
  tree.AddChild(b1, w.ParseFact("s(b)"));
  tree.AddChild(b2, w.ParseFact("s(b)"));

  util::Status status =
      tree.Validate(w.program, w.database, w.ParseFact("a(d)"));
  ASSERT_TRUE(status.ok()) << status.message();
  const dl::Model model = dl::Evaluator::Evaluate(w.program, w.database);
  EXPECT_TRUE(tree.IsNonRecursive());
  EXPECT_TRUE(tree.IsMinimalDepth(model));
  EXPECT_FALSE(tree.IsUnambiguous());  // the ambiguity the paper flags
  EXPECT_EQ(tree.Support().size(), 5u);
}

TEST(ProofTreeTest, CanonicalFormIgnoresChildOrder) {
  const Workspace w = PathAccessibility();
  ProofTree left(w.ParseFact("a(d)"));
  left.AddChild(0, w.ParseFact("s(a)"));
  left.AddChild(0, w.ParseFact("t(a, a, d)"));
  ProofTree right(w.ParseFact("a(d)"));
  right.AddChild(0, w.ParseFact("t(a, a, d)"));
  right.AddChild(0, w.ParseFact("s(a)"));
  EXPECT_EQ(left.CanonicalForm(0), right.CanonicalForm(0));
}

TEST(ProofTreeTest, ToStringIndentsByDepth) {
  const Workspace w = PathAccessibility();
  const ProofTree tree = SimpleTree(w);
  const std::string rendered = tree.ToString(*w.symbols);
  EXPECT_NE(rendered.find("a(d)\n"), std::string::npos);
  EXPECT_NE(rendered.find("  a(a)\n"), std::string::npos);
  EXPECT_NE(rendered.find("    s(a)\n"), std::string::npos);
}

TEST(RuleWitnessTest, OrderedInstanceMatching) {
  const Workspace w = PathAccessibility();
  const dl::Fact head = w.ParseFact("a(d)");
  const dl::Fact a = w.ParseFact("a(a)");
  const dl::Fact t = w.ParseFact("t(a, a, d)");
  EXPECT_TRUE(IsRuleInstance(w.program, head, {&a, &a, &t}));
  // Wrong order: t must be third.
  EXPECT_FALSE(IsRuleInstance(w.program, head, {&t, &a, &a}));
  // Wrong arity.
  EXPECT_FALSE(IsRuleInstance(w.program, head, {&a, &t}));
}

TEST(RuleWitnessTest, SetWitnessReexpandsSharedFacts) {
  const Workspace w = PathAccessibility();
  const dl::Fact head = w.ParseFact("a(d)");
  // The body *set* {a(a), t(a,a,d)} has 2 elements but the rule body has 3
  // atoms; the witness must repeat a(a).
  auto witness = FindRuleWitnessForSet(
      w.program, head, {w.ParseFact("a(a)"), w.ParseFact("t(a, a, d)")});
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->first, 1u);  // the recursive rule
  ASSERT_EQ(witness->second.size(), 3u);
  EXPECT_EQ(witness->second[0], w.ParseFact("a(a)"));
  EXPECT_EQ(witness->second[1], w.ParseFact("a(a)"));
  EXPECT_EQ(witness->second[2], w.ParseFact("t(a, a, d)"));
}

TEST(RuleWitnessTest, SetWitnessRejectsUncoveredChildren) {
  const Workspace w = PathAccessibility();
  // s(a) cannot participate in the recursive rule for a(d).
  auto witness = FindRuleWitnessForSet(
      w.program, w.ParseFact("a(d)"),
      {w.ParseFact("a(a)"), w.ParseFact("t(a, a, d)"), w.ParseFact("s(a)")});
  EXPECT_FALSE(witness.has_value());
}

TEST(TreeClassNameTest, AllNames) {
  EXPECT_EQ(TreeClassName(TreeClass::kAny), "arbitrary");
  EXPECT_EQ(TreeClassName(TreeClass::kNonRecursive), "non-recursive");
  EXPECT_EQ(TreeClassName(TreeClass::kMinimalDepth), "minimal-depth");
  EXPECT_EQ(TreeClassName(TreeClass::kUnambiguous), "unambiguous");
}

}  // namespace
}  // namespace whyprov::provenance
