// Tests of the multi-tenant QoS subsystem (src/qos/): deficit-weighted
// fair queueing (weight-proportional throughput under saturation), the
// batch lane's anti-starvation escape, cost-based admission with
// refund-on-cancel, fair dequeue across shards behind one shared pool,
// and the FIFO-equivalence invariant — a scheduler seeing only default
// tags must pop in exact push order, which is what keeps default-class
// traffic bit-identical to the pre-QoS service. The CI runs this binary
// under ThreadSanitizer.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qos/cost.h"
#include "qos/qos.h"
#include "qos/scheduler.h"
#include "util/executor.h"
#include "whyprov.h"

namespace whyprov {
namespace {

util::TaskTag Tag(qos::QosClass lane, std::string tenant,
                  std::uint64_t shard = 0, double cost = 1.0) {
  util::TaskTag tag;
  tag.lane = static_cast<std::uint8_t>(lane);
  tag.tenant = std::move(tenant);
  tag.shard = shard;
  tag.cost = cost;
  return tag;
}

/// A task that appends its label to `log` when the test pops and runs it.
std::function<void()> Record(std::vector<std::string>& log,
                             std::string label) {
  return [&log, label = std::move(label)] { log.push_back(label); };
}

// --- scheduler: weighted fairness ----------------------------------------

TEST(FairSchedulerTest, ThroughputSharesAreWeightProportional) {
  qos::QosOptions options;
  options.quantum = 1.0;
  options.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  qos::FairScheduler scheduler(options);

  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    scheduler.Push(Record(log, "heavy"),
                   Tag(qos::QosClass::kInteractive, "heavy"));
    scheduler.Push(Record(log, "light"),
                   Tag(qos::QosClass::kInteractive, "light"));
  }
  // A saturated window: both tenants have work queued throughout.
  for (int i = 0; i < 40; ++i) scheduler.Pop()();

  int heavy = 0;
  int light = 0;
  for (const std::string& label : log) (label == "heavy" ? heavy : light)++;
  // Deficit round robin with quantum 1 serves the 3.0-weight tenant
  // exactly three unit tasks per rotation and the 1.0-weight tenant one.
  EXPECT_EQ(heavy, 30);
  EXPECT_EQ(light, 10);
  EXPECT_EQ(scheduler.size(), 40u);
}

// --- scheduler: lanes ----------------------------------------------------

TEST(FairSchedulerTest, BatchLaneIsStarvationFreeUnderInteractiveFlood) {
  qos::QosOptions options;
  options.batch_escape = 4;
  qos::FairScheduler scheduler(options);

  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    scheduler.Push(Record(log, "interactive"),
                   Tag(qos::QosClass::kInteractive, ""));
  }
  for (int i = 0; i < 8; ++i) {
    scheduler.Push(Record(log, "batch"), Tag(qos::QosClass::kBatch, "b"));
  }
  while (scheduler.size() > 0) scheduler.Pop()();

  ASSERT_EQ(log.size(), 48u);
  // After every batch_escape consecutive interactive pops one batch task
  // is served: batch task k lands at position 4 + 5k, a bounded trickle
  // instead of waiting for the interactive flood to end.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(log[4 + 5 * k], "batch") << "batch task " << k;
  }
}

TEST(FairSchedulerTest, ZeroEscapeMeansStrictPriority) {
  qos::QosOptions options;
  options.batch_escape = 0;  // disables the escape hatch
  qos::FairScheduler scheduler(options);

  std::vector<std::string> log;
  for (int i = 0; i < 10; ++i) {
    scheduler.Push(Record(log, "batch"), Tag(qos::QosClass::kBatch, "b"));
    scheduler.Push(Record(log, "interactive"),
                   Tag(qos::QosClass::kInteractive, ""));
  }
  while (scheduler.size() > 0) scheduler.Pop()();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(log[i], "interactive") << "position " << i;
    EXPECT_EQ(log[10 + i], "batch") << "position " << (10 + i);
  }
}

// --- scheduler: shard fairness -------------------------------------------

TEST(FairSchedulerTest, DequeuesRoundRobinAcrossShards) {
  qos::FairScheduler scheduler(qos::QosOptions{});
  std::vector<std::string> log;
  // One tenant, one lane: four tasks from the hot shard 0 queued before
  // two from shard 1.
  scheduler.Push(Record(log, "A"), Tag(qos::QosClass::kInteractive, "t", 0));
  scheduler.Push(Record(log, "B"), Tag(qos::QosClass::kInteractive, "t", 0));
  scheduler.Push(Record(log, "C"), Tag(qos::QosClass::kInteractive, "t", 0));
  scheduler.Push(Record(log, "D"), Tag(qos::QosClass::kInteractive, "t", 0));
  scheduler.Push(Record(log, "E"), Tag(qos::QosClass::kInteractive, "t", 1));
  scheduler.Push(Record(log, "F"), Tag(qos::QosClass::kInteractive, "t", 1));
  while (scheduler.size() > 0) scheduler.Pop()();
  // Shards alternate while both hold work — the hot shard cannot starve
  // its sibling's queued tasks.
  EXPECT_EQ(log, (std::vector<std::string>{"A", "E", "B", "F", "C", "D"}));
}

// --- scheduler: the FIFO-equivalence invariant ---------------------------

TEST(FairSchedulerTest, DefaultTagsPopInExactPushOrder) {
  // Architecture invariant 6: with only default tags (one lane, one
  // tenant, one shard) every scheduling level degenerates and the pop
  // order IS the push order — what keeps default-class behaviour (and
  // the bit-identical transcripts) unchanged from the pre-QoS FIFO.
  qos::FairScheduler scheduler(qos::QosOptions{});
  std::vector<std::string> log;
  for (int i = 0; i < 64; ++i) {
    scheduler.Push(Record(log, std::to_string(i)), util::TaskTag());
  }
  while (scheduler.size() > 0) scheduler.Pop()();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

// --- admission: budget, rate, refund -------------------------------------

TEST(AdmissionControllerTest, OutstandingBudgetRefusesAndRefunds) {
  qos::QosOptions options;
  options.tenant_cost_budget = 10.0;
  qos::AdmissionController admission(options);

  EXPECT_TRUE(admission.Admit("t", 6.0).ok());
  const util::Status refused = admission.Admit("t", 6.0);
  EXPECT_EQ(refused.code(), util::StatusCode::kResourceExhausted);
  // A refusal charges nothing, and budgets are per tenant.
  EXPECT_DOUBLE_EQ(admission.Outstanding("t"), 6.0);
  EXPECT_TRUE(admission.Admit("other", 6.0).ok());

  admission.Release("t", 6.0);
  EXPECT_DOUBLE_EQ(admission.Outstanding("t"), 0.0);
  EXPECT_TRUE(admission.Admit("t", 6.0).ok());
}

TEST(AdmissionControllerTest, TokenBucketLimitsAdmittedCostPerSecond) {
  qos::QosOptions options;
  options.refill_per_second = 1.0;
  options.burst = 2.0;
  qos::AdmissionController admission(options);

  EXPECT_TRUE(admission.AdmitAt("t", 1.0, 0.0).ok());
  EXPECT_TRUE(admission.AdmitAt("t", 1.0, 0.0).ok());
  const util::Status refused = admission.AdmitAt("t", 1.0, 0.0);
  EXPECT_EQ(refused.code(), util::StatusCode::kResourceExhausted);
  // Two seconds later the bucket refilled (capped at the burst depth).
  EXPECT_TRUE(admission.AdmitAt("t", 1.0, 2.0).ok());
  EXPECT_TRUE(admission.AdmitAt("t", 1.0, 2.0).ok());
  EXPECT_EQ(admission.AdmitAt("t", 1.0, 2.0).code(),
            util::StatusCode::kResourceExhausted);
}

// --- service: cost admission and refund-on-cancel ------------------------

constexpr const char* kDiamondProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDiamondDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(a, m3). edge(m3, b).
)";

Engine MakeEngine() {
  auto engine =
      Engine::FromText(kDiamondProgram, kDiamondDatabase, "path");
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  return std::move(engine).value();
}

Request EnumerateOp(std::string tenant,
                    qos::QosClass lane = qos::QosClass::kInteractive) {
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  Request request;
  request.op = std::move(enumerate);
  request.qos_class = lane;
  request.tenant = std::move(tenant);
  return request;
}

TEST(ServiceQosTest, CostAdmissionRejectsAndCancelRefunds) {
  ServiceOptions options;
  // Two workers: one carries the deliberately-blocked stream below, the
  // other keeps serving everything else.
  options.num_threads = 2;
  // Room for one in-flight diamond query (estimated cost a little above
  // the 1.0 floor) but not two.
  options.qos.tenant_cost_budget = 1.5;
  Service service(MakeEngine(), options);

  // r1: a streaming enumeration holds its admission charge while the
  // bounded stream (capacity 1) blocks the producer.
  auto stream = std::make_shared<MemberStream>(/*capacity=*/1);
  auto streamed = service.Submit(EnumerateOp("t"), stream);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  Ticket ticket = std::move(streamed).value();
  ASSERT_TRUE(stream->Pop().has_value());  // the producer is live

  // r2: the same tenant exceeds its outstanding budget — refused at
  // Submit, nothing queued.
  auto rejected = service.Submit(EnumerateOp("t"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);

  // Other tenants are unaffected by t's budget.
  auto other = service.Submit(EnumerateOp("u"));
  ASSERT_TRUE(other.ok()) << other.status().message();
  EXPECT_TRUE(other.value().Wait().status.ok());

  // Cancel r1: its terminal response refunds the charge...
  ticket.Cancel();
  while (stream->Pop().has_value()) {
  }
  EXPECT_EQ(ticket.Wait().status.code(), util::StatusCode::kCancelled);

  // ...so the tenant is admitted again.
  auto retried = service.Submit(EnumerateOp("t"));
  ASSERT_TRUE(retried.ok()) << retried.status().message();
  EXPECT_TRUE(retried.value().Wait().status.ok());

  // The per-tenant stats saw all of it.
  bool found = false;
  for (const qos::TenantStats& row : service.stats().tenants) {
    if (row.tenant != "t" || row.lane != qos::QosClass::kInteractive) {
      continue;
    }
    found = true;
    EXPECT_GE(row.rejected, 1u);
    EXPECT_GE(row.cancelled, 1u);
    EXPECT_GE(row.served, 1u);
    EXPECT_EQ(row.queued, 0u);
  }
  EXPECT_TRUE(found) << "no stats row for tenant 't'";
}

TEST(ServiceQosTest, DefaultClassRequestsMatchFifoServiceResults) {
  // Invariant 6 at the service level: the same default-class workload
  // through the fair scheduler and through the pre-QoS FIFO queue
  // produces identical responses.
  ServiceOptions fair;
  fair.num_threads = 1;
  ASSERT_TRUE(fair.qos.fair_queueing);
  ServiceOptions fifo;
  fifo.num_threads = 1;
  fifo.qos.fair_queueing = false;

  Service fair_service(MakeEngine(), fair);
  Service fifo_service(MakeEngine(), fifo);
  for (int i = 0; i < 5; ++i) {
    auto a = fair_service.Submit(EnumerateOp(""));
    auto b = fifo_service.Submit(EnumerateOp(""));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const Response& fair_response = a.value().Wait();
    const Response& fifo_response = b.value().Wait();
    ASSERT_TRUE(fair_response.status.ok());
    ASSERT_TRUE(fifo_response.status.ok());
    EXPECT_EQ(fair_response.members_emitted, fifo_response.members_emitted);
    EXPECT_EQ(fair_response.exhausted, fifo_response.exhausted);
    EXPECT_EQ(fair_response.model_version, fifo_response.model_version);
  }
}

// --- sharded: fair dequeue through a shared pool -------------------------

TEST(ShardedQosTest, SharedPoolServesEveryShardAndSnapshotsOnce) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.service.num_threads = 2;
  auto sharded = ShardedService::FromText(
      kDiamondProgram, kDiamondDatabase, "path", options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();

  std::vector<Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket =
        sharded.value()->Submit(EnumerateOp(i % 2 == 0 ? "even" : "odd"));
    ASSERT_TRUE(ticket.ok()) << ticket.status().message();
    tickets.push_back(std::move(ticket).value());
  }
  for (Ticket& ticket : tickets) {
    EXPECT_TRUE(ticket.Wait().status.ok()) << ticket.Wait().status.message();
  }

  // One shared registry for the whole group: rows are exact (each
  // request counted once, not once per shard).
  std::uint64_t even_served = 0;
  std::uint64_t odd_served = 0;
  for (const qos::TenantStats& row : sharded.value()->stats().tenants) {
    if (row.tenant == "even") even_served += row.served;
    if (row.tenant == "odd") odd_served += row.served;
  }
  EXPECT_EQ(even_served, 4u);
  EXPECT_EQ(odd_served, 4u);
}

}  // namespace
}  // namespace whyprov
