// Tests for the hardness-reduction gadgets (Lemmas 17 and 24): the
// constructive content of the paper's NP-hardness proofs, validated
// against brute-force solvers of the source problems.

#include <gtest/gtest.h>

#include "provenance/baseline.h"
#include "provenance/decision.h"
#include "scenarios/reductions.h"
#include "util/rng.h"

namespace whyprov::scenarios {
namespace {

namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

// Decides membership D in why((target), D, Q) for arbitrary proof trees
// via the exhaustive reference algorithm.
bool WholeDatabaseIsWhyMember(const ReductionOutput& reduction) {
  const dl::Model model =
      dl::Evaluator::Evaluate(reduction.program, reduction.database);
  auto target = model.Find(reduction.target);
  if (!target.has_value()) return false;
  pv::BaselineLimits limits;
  limits.max_combinations = 1u << 26;
  auto family = pv::EnumerateWhyExhaustive(reduction.program, model, *target,
                                           pv::TreeClass::kAny, limits);
  EXPECT_TRUE(family.ok()) << family.status().message();
  if (!family.ok()) return false;
  std::vector<dl::Fact> whole(reduction.database.facts());
  std::sort(whole.begin(), whole.end());
  return family.value().contains(whole);
}

// Decides membership D_G in whyNR via the SAT-based unambiguous check
// (valid because the reduction query is linear, where whyNR = whyUN).
bool WholeDatabaseIsWhyNrMemberSat(const ReductionOutput& reduction) {
  const dl::Model model =
      dl::Evaluator::Evaluate(reduction.program, reduction.database);
  auto target = model.Find(reduction.target);
  if (!target.has_value()) return false;
  return pv::IsWhyUnMemberSat(reduction.program, model, *target,
                              reduction.database.facts());
}

TEST(ThreeSatReductionTest, ProgramIsLinear) {
  ThreeSatInstance phi;
  phi.num_vars = 2;
  phi.clauses.push_back({1, 2, -1});
  const ReductionOutput reduction = ReduceThreeSat(phi);
  EXPECT_TRUE(reduction.program.IsLinear());
  EXPECT_TRUE(reduction.program.IsRecursive());
  EXPECT_EQ(reduction.program.rules().size(), 8u);
}

TEST(ThreeSatReductionTest, SatisfiableFormulaIsAccepted) {
  // (x1 | x2 | x3) & (~x1 | x2 | x3): satisfiable.
  ThreeSatInstance phi;
  phi.num_vars = 3;
  phi.clauses.push_back({1, 2, 3});
  phi.clauses.push_back({-1, 2, 3});
  ASSERT_TRUE(SolveThreeSatBruteForce(phi));
  EXPECT_TRUE(WholeDatabaseIsWhyMember(ReduceThreeSat(phi)));
}

TEST(ThreeSatReductionTest, UnsatisfiableFormulaIsRejected) {
  // All eight sign patterns over three variables: unsatisfiable.
  ThreeSatInstance phi;
  phi.num_vars = 3;
  for (int mask = 0; mask < 8; ++mask) {
    phi.clauses.push_back({(mask & 1) ? 1 : -1, (mask & 2) ? 2 : -2,
                           (mask & 4) ? 3 : -3});
  }
  ASSERT_FALSE(SolveThreeSatBruteForce(phi));
  EXPECT_FALSE(WholeDatabaseIsWhyMember(ReduceThreeSat(phi)));
}

class ThreeSatPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeSatPropertyTest, ReductionAgreesWithBruteForce) {
  util::Rng rng(0x3a7 + GetParam());
  const int num_vars = 3;
  const int num_clauses = 3 + static_cast<int>(rng.UniformInt(5));
  const ThreeSatInstance phi = RandomThreeSat(num_vars, num_clauses, rng);
  const bool satisfiable = SolveThreeSatBruteForce(phi);
  EXPECT_EQ(WholeDatabaseIsWhyMember(ReduceThreeSat(phi)), satisfiable)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeSatPropertyTest, ::testing::Range(0, 12));

TEST(HamCycleReductionTest, ProgramIsLinear) {
  DigraphInstance g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}, {2, 0}};
  const ReductionOutput reduction = ReduceHamiltonianCycle(g);
  EXPECT_TRUE(reduction.program.IsLinear());
  EXPECT_TRUE(reduction.program.IsRecursive());
  EXPECT_EQ(reduction.program.rules().size(), 4u);
}

TEST(HamCycleReductionTest, TriangleHasCycle) {
  DigraphInstance g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}, {2, 0}};
  ASSERT_TRUE(HasHamiltonianCycleBruteForce(g));
  EXPECT_TRUE(WholeDatabaseIsWhyNrMemberSat(ReduceHamiltonianCycle(g)));
}

TEST(HamCycleReductionTest, PathHasNoCycle) {
  DigraphInstance g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}};
  ASSERT_FALSE(HasHamiltonianCycleBruteForce(g));
  EXPECT_FALSE(WholeDatabaseIsWhyNrMemberSat(ReduceHamiltonianCycle(g)));
}

TEST(HamCycleReductionTest, DisconnectedCliquePairHasNoCycle) {
  DigraphInstance g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  ASSERT_FALSE(HasHamiltonianCycleBruteForce(g));
  EXPECT_FALSE(WholeDatabaseIsWhyNrMemberSat(ReduceHamiltonianCycle(g)));
}

class HamCyclePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HamCyclePropertyTest, ReductionAgreesWithBruteForce) {
  util::Rng rng(0x4a3 + GetParam());
  const int num_nodes = 4 + static_cast<int>(rng.UniformInt(2));
  const DigraphInstance g = RandomDigraph(num_nodes, 0.4, rng);
  const bool has_cycle = HasHamiltonianCycleBruteForce(g);
  EXPECT_EQ(WholeDatabaseIsWhyNrMemberSat(ReduceHamiltonianCycle(g)),
            has_cycle)
      << "seed " << GetParam() << " nodes " << num_nodes;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamCyclePropertyTest,
                         ::testing::Range(0, 12));

// Cross-validation of the two semantics on the Hamiltonian gadget: the
// exhaustive non-recursive reference must agree with the SAT-based
// unambiguous check (whyNR = whyUN for linear queries).
TEST(HamCycleReductionTest, ExhaustiveNrAgreesWithSat) {
  util::Rng rng(0x77);
  for (int trial = 0; trial < 4; ++trial) {
    const DigraphInstance g = RandomDigraph(4, 0.5, rng);
    const ReductionOutput reduction = ReduceHamiltonianCycle(g);
    const dl::Model model =
        dl::Evaluator::Evaluate(reduction.program, reduction.database);
    auto target = model.Find(reduction.target);
    if (!target.has_value()) continue;
    auto family = pv::EnumerateWhyExhaustive(
        reduction.program, model, *target, pv::TreeClass::kNonRecursive);
    ASSERT_TRUE(family.ok()) << family.status().message();
    std::vector<dl::Fact> whole(reduction.database.facts());
    std::sort(whole.begin(), whole.end());
    EXPECT_EQ(family.value().contains(whole),
              WholeDatabaseIsWhyNrMemberSat(reduction));
  }
}

}  // namespace
}  // namespace whyprov::scenarios
