// Unit and property tests for the CDCL SAT solver substrate.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/solver.h"
#include "sat/types.h"
#include "util/rng.h"

namespace whyprov::sat {
namespace {

Lit Pos(Var v) { return Lit::Make(v, false); }
Lit Neg(Var v) { return Lit::Make(v, true); }

TEST(LitTest, EncodingRoundTrip) {
  const Lit p = Pos(7);
  EXPECT_EQ(p.var(), 7);
  EXPECT_FALSE(p.negated());
  EXPECT_TRUE((~p).negated());
  EXPECT_EQ((~p).var(), 7);
  EXPECT_EQ(~~p, p);
  EXPECT_EQ(p.index(), 14);
  EXPECT_EQ((~p).index(), 15);
}

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SingleUnit) {
  Solver solver;
  const Var v = solver.NewVar();
  ASSERT_TRUE(solver.AddUnit(Pos(v)));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(v), LBool::kTrue);
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver solver;
  const Var v = solver.NewVar();
  ASSERT_TRUE(solver.AddUnit(Pos(v)));
  EXPECT_FALSE(solver.AddUnit(Neg(v)));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  const Var c = solver.NewVar();
  // a, a->b, b->c  forces all true.
  ASSERT_TRUE(solver.AddUnit(Pos(a)));
  ASSERT_TRUE(solver.AddBinary(Neg(a), Pos(b)));
  ASSERT_TRUE(solver.AddBinary(Neg(b), Pos(c)));
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(a), LBool::kTrue);
  EXPECT_EQ(solver.ModelValue(b), LBool::kTrue);
  EXPECT_EQ(solver.ModelValue(c), LBool::kTrue);
}

TEST(SolverTest, TautologicalClauseIsIgnored) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(a), Neg(a), Pos(b)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, DuplicateLiteralsAreDeduplicated) {
  Solver solver;
  const Var a = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(a), Pos(a), Pos(a)}));
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(a), LBool::kTrue);
}

// The classical pigeonhole principle PHP(n+1, n): unsatisfiable, and
// famously requires exponential resolution, which exercises learning,
// restarts, and clause-database reduction.
CnfFormula Pigeonhole(int holes) {
  const int pigeons = holes + 1;
  CnfFormula formula;
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  formula.num_vars = pigeons * holes;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    formula.clauses.push_back(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        formula.clauses.push_back({-var(p1, h), -var(p2, h)});
      }
    }
  }
  return formula;
}

TEST(SolverTest, PigeonholeIsUnsat) {
  for (int holes = 2; holes <= 7; ++holes) {
    Solver solver;
    ASSERT_TRUE(LoadIntoSolver(Pigeonhole(holes), solver));
    EXPECT_EQ(solver.Solve(), SolveResult::kUnsat) << "holes=" << holes;
  }
}

TEST(SolverTest, AssumptionsRestrictModels) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddBinary(Pos(a), Pos(b)));
  ASSERT_EQ(solver.Solve({Neg(a)}), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(a), LBool::kFalse);
  EXPECT_EQ(solver.ModelValue(b), LBool::kTrue);
  // Inconsistent assumptions yield UNSAT without poisoning the solver.
  ASSERT_EQ(solver.Solve({Neg(a), Neg(b)}), SolveResult::kUnsat);
  // The formula itself is still satisfiable.
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, IncrementalClauseAdditionAfterSolve) {
  // The blocking-clause enumeration loop depends on this pattern.
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddBinary(Pos(a), Pos(b)));
  int models = 0;
  while (solver.Solve() == SolveResult::kSat) {
    ++models;
    ASSERT_LE(models, 3);
    // Block the current total assignment.
    std::vector<Lit> blocking;
    for (Var v = 0; v < solver.NumVars(); ++v) {
      blocking.push_back(solver.ModelValue(v) == LBool::kTrue ? Neg(v)
                                                              : Pos(v));
    }
    if (!solver.AddClause(blocking)) break;
  }
  EXPECT_EQ(models, 3);  // {a}, {b}, {a,b}
}

TEST(SolverTest, ConflictBudgetReturnsUnknown) {
  Solver solver;
  ASSERT_TRUE(LoadIntoSolver(Pigeonhole(8), solver));
  solver.SetConflictBudget(10);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnknown);
}

TEST(SolverTest, DeadlineHintDegradesToUnknownGracefully) {
  // An already-spent deadline: the solver must give up at a restart
  // boundary — here before the first restart even starts — instead of
  // burning conflicts a poll would chop mid-search. No interrupt check is
  // installed, so kUnknown can only come from the hint's budgeting.
  Solver hinted;
  ASSERT_TRUE(LoadIntoSolver(Pigeonhole(8), hinted));
  hinted.SetDeadlineHint(std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1));
  EXPECT_EQ(hinted.Solve(), SolveResult::kUnknown);

  // A comfortable deadline leaves the search unimpeded.
  Solver relaxed;
  ASSERT_TRUE(LoadIntoSolver(Pigeonhole(5), relaxed));
  relaxed.SetDeadlineHint(std::chrono::steady_clock::now() +
                          std::chrono::minutes(5));
  EXPECT_EQ(relaxed.Solve(), SolveResult::kUnsat);
}

TEST(DimacsTest, ParseWriteRoundTrip) {
  const std::string text =
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n";
  auto parsed = ParseDimacs(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().num_vars, 3);
  ASSERT_EQ(parsed.value().clauses.size(), 2u);
  EXPECT_EQ(parsed.value().clauses[0], (std::vector<int>{1, -2}));
  auto reparsed = ParseDimacs(WriteDimacs(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().clauses, parsed.value().clauses);
}

TEST(DimacsTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDimacs("1 2 0").ok());           // clause before header
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n5 0\n").ok());  // var out of range
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2\n").ok());  // unterminated
}

// Property test: on random 3-CNF instances around the phase-transition
// density, the CDCL solver must agree with the exhaustive truth-table
// check, and every model it reports must actually satisfy the formula.
class RandomCnfTest : public ::testing::TestWithParam<int> {};

CnfFormula RandomThreeCnf(util::Rng& rng, int num_vars, int num_clauses) {
  CnfFormula formula;
  formula.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    std::vector<int> clause;
    while (clause.size() < 3) {
      const int v = static_cast<int>(rng.UniformInt(num_vars)) + 1;
      const int lit = rng.Bernoulli(0.5) ? v : -v;
      if (std::find(clause.begin(), clause.end(), lit) == clause.end() &&
          std::find(clause.begin(), clause.end(), -lit) == clause.end()) {
        clause.push_back(lit);
      }
    }
    formula.clauses.push_back(clause);
  }
  return formula;
}

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  util::Rng rng(0x5eed0000 + GetParam());
  const int num_vars = 12;
  // Sweep densities from easy-SAT through the ~4.27 threshold to easy-UNSAT.
  for (double density : {2.0, 3.5, 4.3, 5.5, 7.0}) {
    const int num_clauses = static_cast<int>(density * num_vars);
    const CnfFormula formula = RandomThreeCnf(rng, num_vars, num_clauses);
    const bool expected = BruteForceSat(formula);
    Solver solver;
    const bool loaded = LoadIntoSolver(formula, solver);
    if (!loaded) {
      EXPECT_FALSE(expected);
      continue;
    }
    const SolveResult result = solver.Solve();
    EXPECT_EQ(result == SolveResult::kSat, expected)
        << "density=" << density << " seed=" << GetParam();
    if (result == SolveResult::kSat) {
      // Verify the model.
      for (const auto& clause : formula.clauses) {
        bool satisfied = false;
        for (int lit : clause) {
          const Var v = std::abs(lit) - 1;
          if ((lit > 0) == (solver.ModelValue(v) == LBool::kTrue)) {
            satisfied = true;
            break;
          }
        }
        EXPECT_TRUE(satisfied) << "model violates a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 20));

// Property test: incremental enumeration with blocking clauses finds
// exactly the number of models the truth table finds.
class ModelCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelCountTest, EnumerationMatchesTruthTableCount) {
  util::Rng rng(0xc0de0000 + GetParam());
  const int num_vars = 8;
  const CnfFormula formula =
      RandomThreeCnf(rng, num_vars, /*num_clauses=*/12);

  // Count models by truth table.
  int expected = 0;
  for (std::uint64_t a = 0; a < (1u << num_vars); ++a) {
    bool all = true;
    for (const auto& clause : formula.clauses) {
      bool sat = false;
      for (int lit : clause) {
        if ((lit > 0) == ((a >> (std::abs(lit) - 1)) & 1)) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) ++expected;
  }

  Solver solver;
  ASSERT_TRUE(LoadIntoSolver(formula, solver));
  int found = 0;
  while (solver.Solve() == SolveResult::kSat) {
    ++found;
    ASSERT_LE(found, expected) << "enumerated a duplicate model";
    std::vector<Lit> blocking;
    for (Var v = 0; v < num_vars; ++v) {
      blocking.push_back(Lit::Make(v, solver.ModelValue(v) == LBool::kTrue));
    }
    if (!solver.AddClause(blocking)) break;
  }
  EXPECT_EQ(found, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCountTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace whyprov::sat
