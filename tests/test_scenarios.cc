// Tests for the workload generators: every scenario must match the
// paper's Table 1 characteristics and produce a usable pipeline.

#include <gtest/gtest.h>

#include "provenance/enumerator.h"
#include "scenarios/scenarios.h"
#include "util/rng.h"

namespace whyprov::scenarios {
namespace {

namespace dl = whyprov::datalog;

TEST(ScenarioTest, TransClosureMatchesTable1) {
  const GeneratedScenario s =
      MakeTransClosure(GraphKind::kSparse, 50, 80, /*seed=*/1);
  EXPECT_EQ(s.scenario_name, "TransClosure");
  EXPECT_EQ(s.query_type, "linear, recursive");
  EXPECT_EQ(s.num_rules, 2u);
  EXPECT_GT(s.database.size(), 0u);
}

TEST(ScenarioTest, DoctorsMatchesTable1) {
  for (int variant = 1; variant <= 7; ++variant) {
    const GeneratedScenario s = MakeDoctors(variant, 60, /*seed=*/2);
    EXPECT_EQ(s.scenario_name, "Doctors-" + std::to_string(variant));
    EXPECT_EQ(s.query_type, "non-recursive") << "variant " << variant;
    EXPECT_EQ(s.num_rules, 6u);
    EXPECT_TRUE(s.program.IsLinear());
  }
}

TEST(ScenarioTest, GalenMatchesTable1) {
  const GeneratedScenario s = MakeGalen(60, /*seed=*/3);
  EXPECT_EQ(s.scenario_name, "Galen");
  EXPECT_EQ(s.query_type, "non-linear, recursive");
  EXPECT_EQ(s.num_rules, 14u);
}

TEST(ScenarioTest, AndersenMatchesTable1) {
  const GeneratedScenario s = MakeAndersen(90, /*seed=*/4);
  EXPECT_EQ(s.scenario_name, "Andersen");
  EXPECT_EQ(s.query_type, "non-linear, recursive");
  EXPECT_EQ(s.num_rules, 4u);
}

TEST(ScenarioTest, CsdaMatchesTable1) {
  const GeneratedScenario s = MakeCsda("httpd", 120, /*seed=*/5);
  EXPECT_EQ(s.scenario_name, "CSDA");
  EXPECT_EQ(s.database_name, "Dhttpd");
  EXPECT_EQ(s.query_type, "linear, recursive");
  EXPECT_EQ(s.num_rules, 2u);
}

TEST(ScenarioTest, GeneratorsAreDeterministicPerSeed) {
  const GeneratedScenario a = MakeAndersen(50, 77);
  const GeneratedScenario b = MakeAndersen(50, 77);
  EXPECT_EQ(a.database.ToString(), b.database.ToString());
  const GeneratedScenario c = MakeAndersen(50, 78);
  EXPECT_NE(a.database.ToString(), c.database.ToString());
}

// Every scenario, end to end at a small scale: evaluate, sample a tuple,
// enumerate at least one member, and check the member really is a subset
// of the database.
class EndToEndTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

GeneratedScenario MakeByName(const std::string& name, std::uint64_t seed) {
  if (name == "transclosure-sparse") {
    return MakeTransClosure(GraphKind::kSparse, 40, 60, seed);
  }
  if (name == "transclosure-social") {
    return MakeTransClosure(GraphKind::kSocial, 48, 120, seed);
  }
  if (name == "doctors") return MakeDoctors(1, 40, seed);
  if (name == "galen") return MakeGalen(40, seed);
  if (name == "andersen") return MakeAndersen(60, seed);
  return MakeCsda("httpd", 80, seed);
}

TEST_P(EndToEndTest, SampleAndExplain) {
  const auto& [name, seed] = GetParam();
  const GeneratedScenario scenario = MakeByName(name, seed);
  const Engine engine = scenario.MakeEngine();
  ASSERT_FALSE(engine.AnswerFactIds().empty())
      << name << ": no answers; enlarge the generator defaults";
  util::Rng rng(seed);
  for (dl::FactId target : engine.SampleAnswers(3, rng)) {
    EnumerateRequest request;
    request.target = target;
    request.max_members = 1;
    auto enumeration = engine.Enumerate(request);
    ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
    auto member = enumeration.value().Next();
    ASSERT_TRUE(member.has_value())
        << name << ": derivable answer must have an explanation";
    for (const dl::Fact& fact : *member) {
      EXPECT_TRUE(scenario.database.Contains(fact));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, EndToEndTest,
    ::testing::Combine(
        ::testing::Values("transclosure-sparse", "transclosure-social",
                          "doctors", "galen", "andersen", "csda"),
        ::testing::Values(11, 12)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace whyprov::scenarios
