// Tests of the asynchronous `whyprov::Service` layer: submission and
// tickets for every request kind, streaming with backpressure, admission
// control (kResourceExhausted), deadlines (kDeadlineExceeded), and
// cooperative cancellation (kCancelled) — including mid-enumeration
// cancels that must release their snapshot without blocking other
// in-flight requests. The CI runs this binary under ThreadSanitizer.

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sat/solver.h"
#include "tests/workspace.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using whyprov::testing::FamilyToStrings;
namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;

constexpr const char* kExample1Program = R"(
  a(X) :- s(X).
  a(X) :- a(Y), a(Z), t(Y, Z, X).
)";
constexpr const char* kExample1Database =
    "s(a). t(a, a, b). t(a, a, c). t(a, a, d). t(b, c, a).";
constexpr const char* kExample4Database =
    "s(a). s(b). t(a, a, c). t(b, b, c). t(c, c, d).";

// A reachability query whose whyUN family for path(a, b) has exactly one
// member per parallel a->mI->b route: a deterministic way to get a
// multi-member enumeration that outlives a few Next() calls.
constexpr const char* kDiamondProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDiamondDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(a, m3). edge(m3, b).
  edge(a, m4). edge(m4, b).
  edge(a, m5). edge(m5, b).
  edge(a, m6). edge(m6, b).
)";
constexpr std::size_t kDiamondMembers = 6;

Engine MakeEngine(const char* program, const char* database,
                  const char* answer) {
  auto engine = Engine::FromText(program, database, answer);
  EXPECT_TRUE(engine.ok()) << engine.status().message();
  return std::move(engine).value();
}

Request EnumerateOp(std::string target_text,
                    std::size_t max_members = provenance::kNoLimit,
                    double deadline_seconds = 0) {
  EnumerateRequest enumerate;
  enumerate.target_text = std::move(target_text);
  enumerate.max_members = max_members;
  Request request;
  request.op = std::move(enumerate);
  request.deadline_seconds = deadline_seconds;
  return request;
}

// --- submission basics ---------------------------------------------------

TEST(ServiceSubmitTest, EnumerateTicketMatchesDirectEngineCall) {
  Service service(MakeEngine(kExample1Program, kExample4Database, "a"));
  auto ticket = service.Submit(EnumerateOp("a(d)"));
  ASSERT_TRUE(ticket.ok()) << ticket.status().message();
  const Response& response = ticket.value().Wait();
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.kind, RequestKind::kEnumerate);
  EXPECT_TRUE(response.exhausted);
  EXPECT_EQ(response.members_emitted, 2u);
  EXPECT_EQ(response.model_version, 0u);
  pv::ProvenanceFamily family(response.members.begin(),
                              response.members.end());
  EXPECT_EQ(FamilyToStrings(family, service.engine().model().symbols()),
            (std::set<std::string>{"{s(a), t(a, a, c), t(c, c, d)}",
                                   "{s(b), t(b, b, c), t(c, c, d)}"}));
  EXPECT_TRUE(ticket.value().done());
  EXPECT_GT(ticket.value().id(), 0u);
}

TEST(ServiceSubmitTest, DecideTicketAnswersMembership) {
  Service service(MakeEngine(kExample1Program, kExample1Database, "a"));
  const auto engine_target = service.engine().FactIdOf("a(d)");
  ASSERT_TRUE(engine_target.ok());

  DecideRequest yes;
  yes.target = engine_target.value();
  yes.candidate = {service.engine().database().facts()[0],   // s(a)
                   service.engine().database().facts()[3]};  // t(a, a, d)
  Request request;
  request.op = yes;
  auto ticket = service.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  const Response& response = ticket.value().Wait();
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.kind, RequestKind::kDecide);
  EXPECT_TRUE(response.member);

  DecideRequest no = yes;
  no.candidate = {service.engine().database().facts()[0]};  // s(a) alone
  Request no_request;
  no_request.op = no;
  auto no_ticket = service.Submit(std::move(no_request));
  ASSERT_TRUE(no_ticket.ok());
  const Response& no_response = no_ticket.value().Wait();
  ASSERT_TRUE(no_response.status.ok());
  EXPECT_FALSE(no_response.member);
}

TEST(ServiceSubmitTest, ExplainTicketCarriesTree) {
  Service service(MakeEngine(kExample1Program, kExample1Database, "a"));
  ExplainRequest explain;
  explain.target_text = "a(d)";
  Request request;
  request.op = explain;
  auto ticket = service.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  const Response& response = ticket.value().Wait();
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.kind, RequestKind::kExplain);
  ASSERT_TRUE(response.explanation.has_value());
  EXPECT_FALSE(response.explanation->member.empty());
}

TEST(ServiceSubmitTest, ApplyDeltaPublishesNewVersionAndReadsFollow) {
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"));
  DeltaRequest delta;
  delta.removed_fact_texts = {"edge(a, m6)"};
  Request request;
  request.op = delta;
  auto ticket = service.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  const Response& response = ticket.value().Wait();
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.kind, RequestKind::kApplyDelta);
  ASSERT_TRUE(response.delta.has_value());
  EXPECT_EQ(response.model_version, 1u);

  auto after = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_TRUE(after.ok());
  const Response& after_response = after.value().Wait();
  ASSERT_TRUE(after_response.status.ok());
  EXPECT_EQ(after_response.members_emitted, kDiamondMembers - 1);
  EXPECT_EQ(after_response.model_version, 1u);
}

// --- streaming -----------------------------------------------------------

TEST(ServiceStreamTest, BoundedStreamDeliversEveryMember) {
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"));
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  // Capacity 1: the producer must block on every member until we pop —
  // the backpressure path, not just the happy path.
  auto streamed = service.Stream(std::move(enumerate), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  auto [ticket, stream] = std::move(streamed).value();
  std::size_t popped = 0;
  while (auto member = stream->Pop()) {
    EXPECT_FALSE(member->empty());
    ++popped;
  }
  EXPECT_EQ(popped, kDiamondMembers);
  EXPECT_TRUE(stream->finished());
  EXPECT_TRUE(stream->final_status().ok());
  const Response& response = ticket.Wait();
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.members_emitted, kDiamondMembers);
  EXPECT_TRUE(response.members.empty()) << "streamed members must not be "
                                           "materialised in the response";
}

TEST(ServiceStreamTest, ConsumerCloseCancelsTheRequest) {
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"));
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(enumerate), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [ticket, stream] = std::move(streamed).value();
  auto first = stream->Pop();
  ASSERT_TRUE(first.has_value());
  stream->Close();  // walk away after one member
  const Response& response = ticket.Wait();
  EXPECT_EQ(response.status.code(), util::StatusCode::kCancelled);
  EXPECT_FALSE(stream->Pop().has_value());
}

// --- cancellation --------------------------------------------------------

TEST(ServiceCancelTest, CancelMidEnumerationReportsCancelledAndReleases) {
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"));
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(enumerate), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [ticket, stream] = std::move(streamed).value();
  // Pop one member so the enumeration is provably mid-flight (between
  // Next() calls, with more members pending), then cancel the ticket.
  ASSERT_TRUE(stream->Pop().has_value());
  ticket.Cancel();
  const Response& response = ticket.Wait();
  EXPECT_EQ(response.status.code(), util::StatusCode::kCancelled);

  // The cancelled ticket released its snapshot: a delta applies cleanly
  // and later requests serve the new version without blocking.
  DeltaRequest delta;
  delta.removed_fact_texts = {"edge(a, m1)"};
  Request delta_request;
  delta_request.op = delta;
  auto delta_ticket = service.Submit(std::move(delta_request));
  ASSERT_TRUE(delta_ticket.ok());
  const Response& delta_response = delta_ticket.value().Wait();
  ASSERT_TRUE(delta_response.status.ok())
      << delta_response.status.message();
  EXPECT_EQ(delta_response.model_version, 1u);

  auto after = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().Wait().members_emitted, kDiamondMembers - 1);

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_GE(stats.succeeded, 2u);
}

TEST(ServiceCancelTest, CancelBeforeExecutionNeverTouchesTheEngine) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                  options);
  // Block the single worker on a full stream...
  EnumerateRequest blocker;
  blocker.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(blocker), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [blocker_ticket, blocker_stream] = std::move(streamed).value();
  // ...queue a second request behind it and cancel it while it waits.
  auto queued = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_TRUE(queued.ok());
  queued.value().Cancel();
  blocker_stream->Close();  // free the worker
  const Response& queued_response = queued.value().Wait();
  EXPECT_EQ(queued_response.status.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(queued_response.members_emitted, 0u);
  blocker_ticket.Wait();
}

// --- deadlines -----------------------------------------------------------

TEST(ServiceDeadlineTest, DeadlineExpiredInQueueIsDeadlineExceeded) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                  options);
  EnumerateRequest blocker;
  blocker.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(blocker), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [blocker_ticket, blocker_stream] = std::move(streamed).value();
  // A nanosecond deadline is long gone by the time the worker frees up.
  auto doomed =
      service.Submit(EnumerateOp("path(a, b)", provenance::kNoLimit,
                                 /*deadline_seconds=*/1e-9));
  ASSERT_TRUE(doomed.ok());
  blocker_stream->Close();
  const Response& response = doomed.value().Wait();
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
  blocker_ticket.Wait();
  EXPECT_GE(service.stats().deadline_exceeded, 1u);
}

TEST(EnumerationTokenTest, ExpiredDeadlineStopsBetweenMembers) {
  Engine engine = MakeEngine(kDiamondProgram, kDiamondDatabase, "path");
  util::CancellationSource source;
  source.SetTimeout(1e-9);
  EnumerateRequest request;
  request.target_text = "path(a, b)";
  request.cancellation = source.token();
  auto enumeration = engine.Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_FALSE(enumeration.value().Next().has_value());
  EXPECT_TRUE(enumeration.value().deadline_exceeded());
  EXPECT_FALSE(enumeration.value().cancelled());
  EXPECT_FALSE(enumeration.value().exhausted());
  EXPECT_EQ(enumeration.value().interruption_status().code(),
            util::StatusCode::kDeadlineExceeded);
}

TEST(EnumerationTokenTest, CancelBetweenNextCallsReportsCancelled) {
  Engine engine = MakeEngine(kDiamondProgram, kDiamondDatabase, "path");
  util::CancellationSource source;
  EnumerateRequest request;
  request.target_text = "path(a, b)";
  request.cancellation = source.token();
  auto enumeration = engine.Enumerate(request);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_TRUE(enumeration.value().Next().has_value());
  source.Cancel();
  EXPECT_FALSE(enumeration.value().Next().has_value());
  EXPECT_TRUE(enumeration.value().cancelled());
  EXPECT_FALSE(enumeration.value().exhausted());
  EXPECT_EQ(enumeration.value().interruption_status().code(),
            util::StatusCode::kCancelled);
  EXPECT_EQ(enumeration.value().members_emitted(), 1u);
}

TEST(EnumerationTokenTest, SolverPollAbandonsTheSearchMidSolve) {
  // An always-true interrupt makes the backend return kUnknown instead of
  // searching — the in-solve half of the cancellation path.
  sat::Solver solver;
  const sat::Var x = solver.NewVar();
  const sat::Var y = solver.NewVar();
  solver.AddBinary(sat::Lit::Make(x, false), sat::Lit::Make(y, false));
  solver.SetInterruptCheck([] { return true; });
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kUnknown);
  solver.SetInterruptCheck(nullptr);
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kSat);
}

TEST(EnumerationTokenTest, DecideHonoursCancelledToken) {
  Engine engine = MakeEngine(kExample1Program, kExample1Database, "a");
  util::CancellationSource source;
  source.Cancel();
  DecideRequest request;
  request.target_text = "a(d)";
  request.candidate = {engine.database().facts()[0]};
  request.cancellation = source.token();
  auto verdict = engine.Decide(request);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), util::StatusCode::kCancelled);
}

// --- admission control ---------------------------------------------------

TEST(ServiceAdmissionTest, FullQueueRejectsWithResourceExhausted) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                  options);
  // Occupy the worker (blocked on its full stream)...
  EnumerateRequest blocker;
  blocker.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(blocker), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [blocker_ticket, blocker_stream] = std::move(streamed).value();
  ASSERT_TRUE(blocker_stream->Pop().has_value());  // ensure it is running
  // ...fill the one queue slot...
  auto queued = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_TRUE(queued.ok());
  // ...and watch admission control refuse the overflow.
  auto rejected = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_GE(service.stats().rejected, 1u);

  blocker_stream->Close();
  blocker_ticket.Wait();
  const Response& queued_response = queued.value().Wait();
  EXPECT_TRUE(queued_response.status.ok());
  EXPECT_EQ(queued_response.members_emitted, kDiamondMembers);
}

// --- snapshots across writes ---------------------------------------------

TEST(ServiceSnapshotTest, InFlightTicketKeepsItsSnapshotAcrossDelta) {
  ServiceOptions options;
  options.num_threads = 2;  // the delta must run beside the enumeration
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                  options);
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(enumerate), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [ticket, stream] = std::move(streamed).value();
  ASSERT_TRUE(stream->Pop().has_value());  // the enumeration is in flight

  DeltaRequest delta;
  delta.removed_fact_texts = {"edge(a, m1)", "edge(a, m2)"};
  Request delta_request;
  delta_request.op = delta;
  auto delta_ticket = service.Submit(std::move(delta_request));
  ASSERT_TRUE(delta_ticket.ok());
  const Response& delta_response = delta_ticket.value().Wait();
  ASSERT_TRUE(delta_response.status.ok())
      << delta_response.status.message();
  EXPECT_EQ(delta_response.model_version, 1u);

  // The in-flight enumeration still drains the *old* snapshot: all six
  // members, not the four the new version has.
  std::size_t drained = 1;
  while (stream->Pop().has_value()) ++drained;
  EXPECT_EQ(drained, kDiamondMembers);
  const Response& response = ticket.Wait();
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.model_version, 0u);

  auto after = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().Wait().members_emitted, kDiamondMembers - 2);
}

TEST(ServiceSnapshotTest, MaxSnapshotLagEvictsTrailingEnumeration) {
  EngineOptions engine_options;
  engine_options.max_snapshot_lag = 1;
  auto engine = Engine::FromText(kDiamondProgram, kDiamondDatabase, "path",
                                 engine_options);
  ASSERT_TRUE(engine.ok());
  ServiceOptions options;
  options.num_threads = 2;  // the deltas must run beside the enumeration
  Service service(std::move(engine).value(), options);

  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(enumerate), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [ticket, stream] = std::move(streamed).value();
  ASSERT_TRUE(stream->Pop().has_value());  // pinned at version 0

  // Two deltas put the engine two versions ahead — past the lag of 1.
  for (const char* fact : {"edge(a, m1)", "edge(a, m2)"}) {
    DeltaRequest delta;
    delta.removed_fact_texts = {fact};
    Request request;
    request.op = std::move(delta);
    auto delta_ticket = service.Submit(std::move(request));
    ASSERT_TRUE(delta_ticket.ok());
    ASSERT_TRUE(delta_ticket.value().Wait().status.ok());
  }

  // The producer notices the lag between members, so it needs the
  // consumer to keep popping; the GC then cuts the stream well before
  // the six members the unevicted enumeration above delivered.
  std::size_t drained = 1;
  while (stream->Pop().has_value()) ++drained;
  EXPECT_LT(drained, kDiamondMembers);
  const Response& response = ticket.Wait();
  EXPECT_EQ(response.status.code(), util::StatusCode::kResourceExhausted)
      << response.status.message();
  EXPECT_EQ(service.stats().snapshot_evictions, 1u);
}

TEST(ServiceSnapshotTest, SnapshotAlarmTracksTheRetainedBytesThreshold) {
  // Threshold 1 byte: the always-retained current model already exceeds
  // it, so the alarm is up from the start.
  EngineOptions tight;
  tight.snapshot_alarm_bytes = 1;
  auto alarmed = Engine::FromText(kDiamondProgram, kDiamondDatabase, "path",
                                  tight);
  ASSERT_TRUE(alarmed.ok());
  Service alarmed_service(std::move(alarmed).value());
  ASSERT_GT(alarmed_service.stats().retained_snapshot_bytes, 1u);
  EXPECT_TRUE(alarmed_service.stats().snapshot_alarm);

  // A generous threshold stays quiet...
  EngineOptions roomy;
  roomy.snapshot_alarm_bytes = std::size_t{1} << 40;
  auto quiet = Engine::FromText(kDiamondProgram, kDiamondDatabase, "path",
                                roomy);
  ASSERT_TRUE(quiet.ok());
  Service quiet_service(std::move(quiet).value());
  EXPECT_FALSE(quiet_service.stats().snapshot_alarm);

  // ...and 0 (the default) means no alarm at all.
  Service unset(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"));
  EXPECT_FALSE(unset.stats().snapshot_alarm);
}

// --- mixed concurrent workload (the TSan meat) ---------------------------

TEST(ServiceConcurrencyTest, MixedWorkloadFromManySubmittersCompletes) {
  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                  options);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 12;
  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> interrupted_count{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&service, &ok_count, &interrupted_count, t] {
      for (std::size_t i = 0; i < kPerSubmitter; ++i) {
        Request request;
        if (i % 6 == 5) {
          DeltaRequest delta;  // remove + restore: stationary database
          if ((i / 6) % 2 == 0) {
            delta.removed_fact_texts = {"edge(m3, b)"};
          } else {
            delta.added_fact_texts = {"edge(m3, b)"};
          }
          request.op = std::move(delta);
        } else if (i % 6 == 4) {
          DecideRequest decide;
          decide.target_text = "path(a, b)";
          decide.candidate = {};  // empty candidate: cheap, valid, false
          request.op = std::move(decide);
        } else {
          request = EnumerateOp("path(a, b)", /*max_members=*/4);
        }
        auto ticket = service.Submit(std::move(request));
        if (!ticket.ok()) continue;  // admission rejections are fine
        if (t == 0 && i % 5 == 0) ticket.value().Cancel();
        const Response& response = ticket.value().Wait();
        if (response.status.ok()) {
          ok_count.fetch_add(1);
        } else {
          EXPECT_TRUE(response.status.code() ==
                          util::StatusCode::kCancelled ||
                      response.status.code() ==
                          util::StatusCode::kResourceExhausted)
              << response.status.message();
          interrupted_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, ok_count.load() + interrupted_count.load());
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // A ticket completes inside its worker task, so the in_flight gauge can
  // trail the last Wait() by the task's return path; give it a beat.
  for (int i = 0; i < 10000 && service.stats().in_flight != 0; ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(service.stats().in_flight, 0u);
}

// --- stats: throughput, versions, snapshot accounting --------------------

TEST(ServiceStatsTest, ReportsThroughputVersionAndSnapshotRetention) {
  ServiceOptions options;
  options.num_threads = 2;  // the delta must run beside the blocked stream
  Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                  options);
  auto first = service.Submit(EnumerateOp("path(a, b)"));
  ASSERT_TRUE(first.ok());
  first.value().Wait();

  ServiceStats stats = service.stats();
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_EQ(stats.model_version, 0u);
  EXPECT_EQ(stats.retained_snapshots, 1u);  // just the published state
  EXPECT_GT(stats.retained_snapshot_bytes, 0u);
  EXPECT_EQ(stats.version_skew, 0u);
  EXPECT_TRUE(stats.shards.empty()) << "single-engine services have no rows";

  // An in-flight streaming enumeration pins its snapshot across a delta:
  // the retired version must show up in the retention gauges until the
  // stream finishes.
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, b)";
  auto streamed = service.Stream(std::move(enumerate), /*stream_capacity=*/1);
  ASSERT_TRUE(streamed.ok());
  auto [ticket, stream] = std::move(streamed).value();
  ASSERT_TRUE(stream->Pop().has_value());  // provably mid-flight

  DeltaRequest delta;
  delta.removed_fact_texts = {"edge(a, m1)"};
  Request delta_request;
  delta_request.op = delta;
  auto delta_ticket = service.Submit(std::move(delta_request));
  ASSERT_TRUE(delta_ticket.ok());
  ASSERT_TRUE(delta_ticket.value().Wait().status.ok());

  stats = service.stats();
  EXPECT_EQ(stats.model_version, 1u);
  EXPECT_EQ(stats.retained_snapshots, 2u)
      << "the pinned v0 snapshot plus the published v1";

  while (stream->Pop().has_value()) {
  }
  ticket.Wait();
  EXPECT_EQ(service.stats().retained_snapshots, 1u)
      << "draining the stream must release the retired snapshot";
}

// --- blocking batch conveniences -----------------------------------------

TEST(ServiceBatchTest, EnumerateBatchMatchesEngineBatch) {
  Engine engine = MakeEngine(kExample1Program, kExample4Database, "a");
  std::vector<EnumerateRequest> requests(3);
  requests[0].target_text = "a(d)";
  requests[1].target_text = "a(c)";
  requests[2].target_text = "a(nonexistent)";
  const BatchEnumerateResult direct = engine.EnumerateBatch(requests);

  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 2;  // smaller than the batch: exercises feeding
  Service service(MakeEngine(kExample1Program, kExample4Database, "a"),
                  options);
  const BatchEnumerateResult served = service.EnumerateBatch(requests);

  ASSERT_EQ(served.outcomes.size(), direct.outcomes.size());
  for (std::size_t i = 0; i < served.outcomes.size(); ++i) {
    EXPECT_EQ(served.outcomes[i].status.ok(), direct.outcomes[i].status.ok());
    EXPECT_EQ(served.outcomes[i].members.size(),
              direct.outcomes[i].members.size());
  }
  EXPECT_EQ(served.stats.succeeded, direct.stats.succeeded);
  EXPECT_EQ(served.stats.failed, direct.stats.failed);
  EXPECT_EQ(served.stats.members_emitted, direct.stats.members_emitted);
}

TEST(ServiceBatchTest, DecideBatchMatchesEngineBatch) {
  Engine engine = MakeEngine(kExample1Program, kExample1Database, "a");
  std::vector<DecideRequest> requests(2);
  requests[0].target_text = "a(d)";
  requests[0].candidate = {engine.database().facts()[0],
                           engine.database().facts()[3]};
  requests[1].target_text = "a(d)";
  requests[1].candidate = {engine.database().facts()[0]};
  const BatchDecideResult direct = engine.DecideBatch(requests);

  Service service(MakeEngine(kExample1Program, kExample1Database, "a"));
  const BatchDecideResult served = service.DecideBatch(requests);
  ASSERT_EQ(served.outcomes.size(), 2u);
  EXPECT_TRUE(served.outcomes[0].status.ok());
  EXPECT_EQ(served.outcomes[0].member, direct.outcomes[0].member);
  EXPECT_EQ(served.outcomes[1].member, direct.outcomes[1].member);
}

// --- shutdown ------------------------------------------------------------

TEST(ServiceShutdownTest, DestructionDrainsAdmittedRequests) {
  std::vector<Ticket> tickets;
  {
    ServiceOptions options;
    options.num_threads = 1;
    Service service(MakeEngine(kDiamondProgram, kDiamondDatabase, "path"),
                    options);
    for (int i = 0; i < 6; ++i) {
      auto ticket = service.Submit(EnumerateOp("path(a, b)"));
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(std::move(ticket).value());
    }
    // ~Service drains the queue before joining.
  }
  for (const Ticket& ticket : tickets) {
    EXPECT_TRUE(ticket.done());
    EXPECT_TRUE(ticket.Wait().status.ok());
  }
}

}  // namespace
}  // namespace whyprov
