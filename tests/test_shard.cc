// Tests of the sharded serving layer: ShardMap policies (by-predicate
// partitioning with dependency-closure delta fan-out, fact-range striping
// over lockstep replicas), the ShardedService router, and — the core
// contract — bit-identical results: the same scenario served with 1, 2,
// and 4 shards must produce exactly the enumeration/decision/explain
// transcript of one unsharded engine, including across interleaved
// ApplyDelta. Also covers cancellation mid-scatter/gather, ordered
// MemberMerge gathering, per-shard stats (queue depth, q/s, snapshot
// retention, version skew), and the shard-local write path. The CI runs
// this binary under ThreadSanitizer.

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "scenarios/scenarios.h"
#include "tests/workspace.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using whyprov::testing::MemberToString;
namespace dl = whyprov::datalog;

// --- ShardMap ------------------------------------------------------------

constexpr const char* kTwoTowerProgram = R"(
  p(X) :- a(X).
  p(X) :- p(Y), ap(Y, X).
  q(X) :- b(X).
  q(X) :- q(Y), bq(Y, X).
)";
constexpr const char* kTwoTowerDatabase = R"(
  a(a1). ap(a1, a2). ap(a2, a3).
  b(b1). bq(b1, b2). bq(b2, b3).
)";

testing::Workspace TwoTowers() {
  return testing::MakeWorkspace(kTwoTowerProgram, kTwoTowerDatabase);
}

TEST(ShardMapTest, AutoFallsBackToFactRangeForSinglePredicate) {
  auto ws = testing::MakeWorkspace(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).",
      "edge(a, b). edge(b, c).");
  auto predicate = ws.symbols->FindPredicate("path");
  ASSERT_TRUE(predicate.ok());
  auto map = ShardMap::Build(ws.program, 4);
  ASSERT_TRUE(map.ok()) << map.status().message();
  EXPECT_EQ(map.value().policy(), ShardPolicy::kByFactRange);
  // Replicas: every delta reaches every shard.
  EXPECT_EQ(map.value().ShardsForDelta({}).size(), 4u);
}

TEST(ShardMapTest, ByPredicatePartitionsClosuresAndPrunesDeltas) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  const auto a = ws.symbols->FindPredicate("a");
  const auto b = ws.symbols->FindPredicate("b");
  ASSERT_TRUE(p.ok() && a.ok() && b.ok());
  auto map = ShardMap::Build(ws.program, 2);
  ASSERT_TRUE(map.ok()) << map.status().message();
  EXPECT_EQ(map.value().policy(), ShardPolicy::kByPredicate);

  // p's tower and q's tower are independent: a delta on `a` must reach
  // exactly the shard owning p, and never q's.
  const std::size_t p_shard = map.value().OwnerOfPredicate(p.value());
  const auto a_targets = map.value().ShardsForDelta({a.value()});
  ASSERT_EQ(a_targets.size(), 1u);
  EXPECT_EQ(a_targets.front(), p_shard);
  const auto b_targets = map.value().ShardsForDelta({b.value()});
  ASSERT_EQ(b_targets.size(), 1u);
  EXPECT_NE(b_targets.front(), p_shard);
  // A delta touching both towers fans out to both shards.
  EXPECT_EQ(map.value().ShardsForDelta({a.value(), b.value()}).size(), 2u);
}

TEST(ShardMapTest, ByPredicateNeedsEnoughPredicates) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  ASSERT_TRUE(p.ok());
  auto map =
      ShardMap::Build(ws.program, 4, ShardPolicy::kByPredicate);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), util::StatusCode::kInvalidArgument);
  // kAuto degrades to fact-range instead of failing.
  auto fallback = ShardMap::Build(ws.program, 4);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback.value().policy(), ShardPolicy::kByFactRange);
}

// --- datalog partition utilities -----------------------------------------

TEST(PartitionTest, SlicedModelAnswersItsClosureBitForBit) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  ASSERT_TRUE(p.ok());

  // Slice to p's dependency closure: the q tower must be gone, and the
  // sliced engine's p-families must equal the full engine's as sets.
  const auto closure_list = dl::DependencyClosure(ws.program, {p.value()});
  const std::unordered_set<dl::PredicateId> closure(closure_list.begin(),
                                                    closure_list.end());
  auto sliced_program = dl::SliceProgram(ws.program, closure);
  ASSERT_TRUE(sliced_program.ok());
  EXPECT_EQ(sliced_program.value().rules().size(), 2u);
  dl::Database sliced_db = dl::SliceDatabase(ws.database, closure);
  EXPECT_EQ(sliced_db.size(), 3u);  // a(a1), ap(a1, a2), ap(a2, a3)

  Engine full = Engine::FromParts(ws.program, ws.database, p.value());
  Engine sliced = Engine::FromParts(std::move(sliced_program).value(),
                                    std::move(sliced_db), p.value());
  for (const char* target : {"p(a1)", "p(a2)", "p(a3)"}) {
    EnumerateRequest request;
    request.target_text = target;
    auto full_members = full.Enumerate(request);
    auto sliced_members = sliced.Enumerate(request);
    ASSERT_TRUE(full_members.ok() && sliced_members.ok());
    std::set<std::string> full_set, sliced_set;
    for (const auto& member : full_members.value().All()) {
      full_set.insert(MemberToString(member, *ws.symbols));
    }
    for (const auto& member : sliced_members.value().All()) {
      sliced_set.insert(MemberToString(member, *ws.symbols));
    }
    EXPECT_EQ(sliced_set, full_set) << target;
  }
  // The q tower is not derivable in the slice.
  EnumerateRequest q_request;
  q_request.target_text = "q(b1)";
  EXPECT_FALSE(sliced.Enumerate(q_request).ok());
}

// --- the equivalence harness --------------------------------------------

/// One front end under test: anything that can submit a Request and
/// block for its Response.
using SubmitFn = std::function<Response(Request)>;

/// Replays a scripted mixed workload — enumerate / decide / explain over
/// every target, interleaved with awaited remove-then-restore deltas —
/// and renders every result into a transcript. Bit-identical serving
/// means bit-identical transcripts.
std::vector<std::string> RunScript(const SubmitFn& submit,
                                   const std::vector<std::string>& targets,
                                   const std::vector<std::string>& churn,
                                   const dl::SymbolTable& symbols) {
  std::vector<std::string> transcript;
  // Per-target Decide candidates, captured from the first enumeration so
  // every front end derives them from its own (identical) answers.
  std::vector<std::vector<dl::Fact>> candidates(targets.size());

  const auto read_phase = [&](const std::string& label) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      EnumerateRequest enumerate;
      enumerate.target_text = targets[i];
      enumerate.max_members = 8;
      Request request;
      request.op = std::move(enumerate);
      Response response = submit(std::move(request));
      std::string line = label + " enum " + targets[i] + " " +
                         std::string(util::StatusCodeName(
                             response.status.code()));
      for (const auto& member : response.members) {
        line += " " + MemberToString(member, symbols);
      }
      transcript.push_back(std::move(line));
      if (candidates[i].empty() && !response.members.empty()) {
        candidates[i] = response.members.front();
      }

      if (!candidates[i].empty()) {
        DecideRequest decide;
        decide.target_text = targets[i];
        decide.candidate = candidates[i];
        Request decide_request;
        decide_request.op = std::move(decide);
        Response verdict = submit(std::move(decide_request));
        transcript.push_back(
            label + " decide " + targets[i] + " " +
            std::string(util::StatusCodeName(verdict.status.code())) +
            (verdict.status.ok() ? (verdict.member ? " member" : " non-member")
                                 : ""));
      }

      ExplainRequest explain;
      explain.target_text = targets[i];
      Request explain_request;
      explain_request.op = std::move(explain);
      Response explanation = submit(std::move(explain_request));
      std::string explain_line =
          label + " explain " + targets[i] + " " +
          std::string(util::StatusCodeName(explanation.status.code()));
      if (explanation.explanation.has_value()) {
        explain_line +=
            " " + MemberToString(explanation.explanation->member, symbols) +
            " tree=" + std::to_string(explanation.explanation->tree.size());
      }
      transcript.push_back(std::move(explain_line));
    }
  };

  read_phase("v0");
  for (std::size_t d = 0; d < churn.size(); ++d) {
    DeltaRequest remove;
    remove.removed_fact_texts = {churn[d]};
    Request request;
    request.op = std::move(remove);
    Response response = submit(std::move(request));
    transcript.push_back(
        "del " + churn[d] + " " +
        std::string(util::StatusCodeName(response.status.code())));
    read_phase("d" + std::to_string(d));
  }
  for (std::size_t d = 0; d < churn.size(); ++d) {
    DeltaRequest restore;
    restore.added_fact_texts = {churn[d]};
    Request request;
    request.op = std::move(restore);
    Response response = submit(std::move(request));
    transcript.push_back(
        "add " + churn[d] + " " +
        std::string(util::StatusCodeName(response.status.code())));
  }
  read_phase("restored");
  return transcript;
}

SubmitFn Submitter(Service& service) {
  return [&service](Request request) {
    auto ticket = service.Submit(std::move(request));
    EXPECT_TRUE(ticket.ok()) << ticket.status().message();
    if (!ticket.ok()) return Response();
    return ticket.value().Take();
  };
}

SubmitFn Submitter(ShardedService& service) {
  return [&service](Request request) {
    auto ticket = service.Submit(std::move(request));
    EXPECT_TRUE(ticket.ok()) << ticket.status().message();
    if (!ticket.ok()) return Response();
    return ticket.value().Take();
  };
}

/// Samples targets and churn facts from a scenario deterministically.
void ScenarioScript(const scenarios::GeneratedScenario& scenario,
                    std::size_t num_targets, std::size_t num_churn,
                    std::vector<std::string>& targets,
                    std::vector<std::string>& churn) {
  Engine probe = scenario.MakeEngine();
  for (const dl::FactId id : probe.SampleAnswers(num_targets)) {
    targets.push_back(probe.FactToText(id));
  }
  const std::vector<dl::Fact>& facts = scenario.database.facts();
  for (std::size_t i = 1; i <= num_churn && i <= facts.size(); ++i) {
    const dl::Fact& fact = facts[(i * facts.size()) / (num_churn + 1)];
    churn.push_back(dl::FactToString(fact, scenario.database.symbols()));
  }
}

void CheckShardedEquivalence(const scenarios::GeneratedScenario& scenario,
                             ShardPolicy policy = ShardPolicy::kAuto) {
  std::vector<std::string> targets;
  std::vector<std::string> churn;
  ScenarioScript(scenario, /*num_targets=*/3, /*num_churn=*/2, targets,
                 churn);
  ASSERT_FALSE(targets.empty());

  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  ASSERT_TRUE(predicate.ok());

  // The unsharded reference.
  Service reference(scenario.MakeEngine());
  const std::vector<std::string> expected = RunScript(
      Submitter(reference), targets, churn, *scenario.symbols);

  for (const std::size_t num_shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{4}}) {
    ShardedServiceOptions options;
    options.num_shards = num_shards;
    options.policy = policy;
    auto sharded = ShardedService::Create(scenario.program, scenario.database,
                                          predicate.value(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    const std::vector<std::string> actual = RunScript(
        Submitter(*sharded.value()), targets, churn, *scenario.symbols);
    EXPECT_EQ(actual, expected)
        << scenario.scenario_name << " diverged at " << num_shards
        << " shards ("
        << ShardPolicyName(sharded.value()->shard_map().policy()) << ")";
  }
}

// The six scenario generators: sharded serving must be invisible in the
// results on every one of them, across interleaved deltas.

TEST(ShardedEquivalenceTest, TransClosureSparse) {
  CheckShardedEquivalence(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60,
                                  20240611));
}

TEST(ShardedEquivalenceTest, TransClosureSocial) {
  CheckShardedEquivalence(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSocial, 16, 24,
                                  20240611));
}

TEST(ShardedEquivalenceTest, Doctors) {
  CheckShardedEquivalence(scenarios::MakeDoctors(1, 100, 20240611));
}

TEST(ShardedEquivalenceTest, Andersen) {
  CheckShardedEquivalence(scenarios::MakeAndersen(100, 20240611));
}

TEST(ShardedEquivalenceTest, Galen) {
  CheckShardedEquivalence(scenarios::MakeGalen(20, 20240611));
}

TEST(ShardedEquivalenceTest, Csda) {
  CheckShardedEquivalence(scenarios::MakeCsda("httpd", 200, 20240611));
}

// Force fact-range on a multi-predicate scenario so the replica path is
// exercised even where kAuto would have picked by-predicate.
TEST(ShardedEquivalenceTest, DoctorsFactRangeReplicas) {
  CheckShardedEquivalence(scenarios::MakeDoctors(1, 100, 20240611),
                          ShardPolicy::kByFactRange);
}

// --- routing semantics ---------------------------------------------------

TEST(ShardedRoutingTest, FactRangeAcceptsIdsAndTexts) {
  auto scenario =
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60, 7);
  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  ASSERT_TRUE(predicate.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded = ShardedService::Create(scenario.program, scenario.database,
                                        predicate.value(), options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded.value()->shard_map().policy(),
            ShardPolicy::kByFactRange);

  // Lockstep replicas: ids from the reference engine route everywhere.
  const auto targets = sharded.value()->engine().SampleAnswers(2);
  ASSERT_FALSE(targets.empty());
  for (const dl::FactId id : targets) {
    EnumerateRequest by_id;
    by_id.target = id;
    by_id.max_members = 4;
    Request request;
    request.op = by_id;
    auto ticket = sharded.value()->Submit(std::move(request));
    ASSERT_TRUE(ticket.ok()) << ticket.status().message();
    const Response& response = ticket.value().Wait();
    EXPECT_TRUE(response.status.ok()) << response.status.message();

    EnumerateRequest by_text;
    by_text.target_text = sharded.value()->engine().FactToText(id);
    by_text.max_members = 4;
    Request text_request;
    text_request.op = by_text;
    auto text_ticket = sharded.value()->Submit(std::move(text_request));
    ASSERT_TRUE(text_ticket.ok());
    EXPECT_EQ(text_ticket.value().Wait().members_emitted,
              response.members_emitted);
  }

  // An unknown target surfaces the engine's own error through the ticket,
  // exactly like the unsharded service.
  EnumerateRequest unknown;
  unknown.target_text = "path(nope, nowhere)";
  Request request;
  request.op = std::move(unknown);
  auto ticket = sharded.value()->Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  EXPECT_FALSE(ticket.value().Wait().status.ok());
}

TEST(ShardedRoutingTest, ByPredicateRejectsBareIds) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  ASSERT_TRUE(p.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded =
      ShardedService::Create(ws.program, ws.database, p.value(), options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded.value()->shard_map().policy(), ShardPolicy::kByPredicate);

  EnumerateRequest by_id;
  by_id.target = 0;  // shard-local: meaningless through the router
  Request request;
  request.op = by_id;
  auto ticket = sharded.value()->Submit(std::move(request));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), util::StatusCode::kInvalidArgument);
}

// --- delta fan-out, version skew, per-shard stats ------------------------

TEST(ShardedDeltaTest, PrunedFanOutSkewsVersionsAndCountsSkips) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  ASSERT_TRUE(p.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded =
      ShardedService::Create(ws.program, ws.database, p.value(), options);
  ASSERT_TRUE(sharded.ok());
  ShardedService& service = *sharded.value();
  ASSERT_EQ(service.shard_map().policy(), ShardPolicy::kByPredicate);

  // A delta on p's tower only: q's shard must be skipped entirely.
  DeltaRequest delta;
  delta.removed_fact_texts = {"ap(a2, a3)"};
  Request request;
  request.op = std::move(delta);
  auto ticket = service.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok()) << ticket.status().message();
  const Response& response = ticket.value().Wait();
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.model_version, 1u);

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.version_skew, 1u);
  std::uint64_t applied = 0, skipped = 0;
  for (const ShardStats& shard : stats.shards) {
    applied += shard.deltas_applied;
    skipped += shard.deltas_skipped;
    EXPECT_GE(shard.retained_snapshots, 1u);
    EXPECT_GT(shard.retained_snapshot_bytes, 0u);
  }
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(skipped, 1u);

  // The pruned shard still answers its tower, bit-identically.
  EnumerateRequest q3;
  q3.target_text = "q(b3)";
  Request q_request;
  q_request.op = std::move(q3);
  auto q_ticket = service.Submit(std::move(q_request));
  ASSERT_TRUE(q_ticket.ok());
  const Response& q_response = q_ticket.value().Wait();
  ASSERT_TRUE(q_response.status.ok());
  EXPECT_EQ(q_response.members_emitted, 1u);

  // p's tower lost its a3 derivation.
  EnumerateRequest p3;
  p3.target_text = "p(a3)";
  Request p_request;
  p_request.op = std::move(p3);
  auto p_ticket = service.Submit(std::move(p_request));
  ASSERT_TRUE(p_ticket.ok());
  EXPECT_FALSE(p_ticket.value().Wait().status.ok());
}

TEST(ShardedDeltaTest, MalformedDeltaTextFailsThroughTheTicket) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  ASSERT_TRUE(p.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded =
      ShardedService::Create(ws.program, ws.database, p.value(), options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded.value()->shard_map().policy(), ShardPolicy::kByPredicate);

  DeltaRequest delta;
  delta.added_fact_texts = {"((garbage"};
  Request request;
  request.op = std::move(delta);
  auto ticket = sharded.value()->Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket.value().Wait().status.code(),
            util::StatusCode::kParseError);

  // No shard applied anything: versions stay at 0.
  EXPECT_EQ(sharded.value()->stats().model_version, 0u);
}

TEST(ShardedDeltaTest, UncoveredPredicateFactsLandOnTheDefaultShard) {
  auto ws = TwoTowers();
  const auto p = ws.symbols->FindPredicate("p");
  ASSERT_TRUE(p.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded =
      ShardedService::Create(ws.program, ws.database, p.value(), options);
  ASSERT_TRUE(sharded.ok());
  ShardedService& service = *sharded.value();
  ASSERT_EQ(service.shard_map().policy(), ShardPolicy::kByPredicate);

  // A fact over a predicate no rule mentions is in no shard's partition;
  // it must still be written (shard 0) and readable back through the
  // router, like on the unsharded engine.
  DeltaRequest delta;
  delta.added_fact_texts = {"annotation(a1)"};
  Request request;
  request.op = std::move(delta);
  auto ticket = service.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  const Response& response = ticket.value().Wait();
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  ASSERT_TRUE(response.delta.has_value());
  EXPECT_EQ(response.delta->facts_added, 1u);

  EnumerateRequest read;
  read.target_text = "annotation(a1)";
  Request read_request;
  read_request.op = std::move(read);
  auto read_ticket = service.Submit(std::move(read_request));
  ASSERT_TRUE(read_ticket.ok());
  const Response& read_response = read_ticket.value().Wait();
  ASSERT_TRUE(read_response.status.ok()) << read_response.status.message();
  EXPECT_EQ(read_response.members_emitted, 1u);
}

TEST(ShardedDeltaTest, FactRangeDeltasKeepReplicasLockstep) {
  auto scenario =
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60, 7);
  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  ASSERT_TRUE(predicate.ok());
  ShardedServiceOptions options;
  options.num_shards = 4;
  auto sharded = ShardedService::Create(scenario.program, scenario.database,
                                        predicate.value(), options);
  ASSERT_TRUE(sharded.ok());
  ShardedService& service = *sharded.value();

  const std::string churn = dl::FactToString(
      scenario.database.facts().front(), *scenario.symbols);
  for (int round = 0; round < 3; ++round) {
    DeltaRequest delta;
    if (round % 2 == 0) {
      delta.removed_fact_texts = {churn};
    } else {
      delta.added_fact_texts = {churn};
    }
    Request request;
    request.op = std::move(delta);
    auto ticket = service.Submit(std::move(request));
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(ticket.value().Wait().status.ok())
        << ticket.value().Wait().status.message();
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.version_skew, 0u);
  ASSERT_EQ(stats.shards.size(), 4u);
  for (const ShardStats& shard : stats.shards) {
    EXPECT_EQ(shard.model_version, 3u);
    EXPECT_EQ(shard.deltas_applied, 3u);
  }
}

// --- scatter/gather ------------------------------------------------------

constexpr const char* kDiamondProgram = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";
constexpr const char* kDiamondDatabase = R"(
  edge(a, m1). edge(m1, b).
  edge(a, m2). edge(m2, b).
  edge(a, m3). edge(m3, b).
  edge(c, n1). edge(n1, d).
  edge(c, n2). edge(n2, d).
)";

std::unique_ptr<ShardedService> MakeDiamondService(std::size_t num_shards,
                                                   std::size_t num_threads = 0,
                                                   std::size_t queue = 64) {
  ShardedServiceOptions options;
  options.num_shards = num_shards;
  options.service.num_threads = num_threads;
  options.service.queue_capacity = queue;
  auto sharded = ShardedService::FromText(kDiamondProgram, kDiamondDatabase,
                                          "path", options);
  EXPECT_TRUE(sharded.ok()) << sharded.status().message();
  return std::move(sharded).value();
}

TEST(ShardedStreamTest, StreamManyGathersInRequestOrder) {
  auto service = MakeDiamondService(2);
  std::vector<EnumerateRequest> requests(2);
  requests[0].target_text = "path(a, b)";  // 3 members
  requests[1].target_text = "path(c, d)";  // 2 members
  auto merged = service->StreamMany(requests, /*stream_capacity=*/1);
  ASSERT_TRUE(merged.ok()) << merged.status().message();

  // Stable ordering: every path(a, b) member strictly precedes every
  // path(c, d) member, whatever shard produced what. (A member's first
  // fact is its sorted minimum: "edge(a, ..." vs "edge(c, ...".)
  std::vector<std::string> seen;
  while (auto member = merged.value()->Pop()) {
    ASSERT_FALSE(member->empty());
    seen.push_back(
        dl::FactToString(member->front(), service->engine().model().symbols())
            .substr(0, 7));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"edge(a,", "edge(a,", "edge(a,",
                                            "edge(c,", "edge(c,"}));
  merged.value()->Wait();
  EXPECT_TRUE(merged.value()->final_status().ok());
}

TEST(ShardedStreamTest, CloseMidScatterGatherCancelsEveryPart) {
  auto service = MakeDiamondService(2, /*num_threads=*/2);
  std::vector<EnumerateRequest> requests(4);
  requests[0].target_text = "path(a, b)";
  requests[1].target_text = "path(c, d)";
  requests[2].target_text = "path(a, b)";
  requests[3].target_text = "path(c, d)";
  auto merged = service->StreamMany(requests, /*stream_capacity=*/1);
  ASSERT_TRUE(merged.ok()) << merged.status().message();

  // Take one member, then abandon the whole gather mid-flight.
  ASSERT_TRUE(merged.value()->Pop().has_value());
  merged.value()->Close();
  merged.value()->Wait();
  for (const MemberMerge::Part& part : merged.value()->parts()) {
    const Response& response = part.ticket.Wait();
    EXPECT_TRUE(response.status.ok() ||
                response.status.code() == util::StatusCode::kCancelled)
        << response.status.message();
  }
  EXPECT_FALSE(merged.value()->Pop().has_value());

  // The service stays healthy: a fresh request completes normally.
  EnumerateRequest after;
  after.target_text = "path(a, b)";
  Request request;
  request.op = std::move(after);
  auto ticket = service->Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket.value().Wait().status.ok());
}

TEST(ShardedBatchTest, BatchesMatchUnshardedService) {
  auto scenario = scenarios::MakeDoctors(1, 100, 20240611);
  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  ASSERT_TRUE(predicate.ok());

  Engine probe = scenario.MakeEngine();
  std::vector<EnumerateRequest> requests;
  for (const dl::FactId id : probe.SampleAnswers(4)) {
    EnumerateRequest request;
    request.target_text = probe.FactToText(id);
    request.max_members = 4;
    requests.push_back(std::move(request));
  }
  ASSERT_FALSE(requests.empty());

  Service reference(scenario.MakeEngine());
  const BatchEnumerateResult expected = reference.EnumerateBatch(requests);

  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded = ShardedService::Create(scenario.program, scenario.database,
                                        predicate.value(), options);
  ASSERT_TRUE(sharded.ok());
  const BatchEnumerateResult actual =
      sharded.value()->EnumerateBatch(requests);

  ASSERT_EQ(actual.outcomes.size(), expected.outcomes.size());
  for (std::size_t i = 0; i < actual.outcomes.size(); ++i) {
    EXPECT_EQ(actual.outcomes[i].status.ok(),
              expected.outcomes[i].status.ok());
    EXPECT_EQ(actual.outcomes[i].members, expected.outcomes[i].members)
        << "batch outcome " << i << " diverged";
  }
  EXPECT_EQ(actual.stats.succeeded, expected.stats.succeeded);
  EXPECT_EQ(actual.stats.members_emitted, expected.stats.members_emitted);
}

// --- stats & accounting --------------------------------------------------

TEST(ShardedStatsTest, AggregatesAndPerShardRows) {
  auto service = MakeDiamondService(2);
  for (int i = 0; i < 4; ++i) {
    EnumerateRequest enumerate;
    enumerate.target_text = i % 2 == 0 ? "path(a, b)" : "path(c, d)";
    Request request;
    request.op = std::move(enumerate);
    auto ticket = service->Submit(std::move(request));
    ASSERT_TRUE(ticket.ok());
    ticket.value().Wait();
  }
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.succeeded, 4u);
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_GE(stats.retained_snapshots, 2u);  // one live snapshot per shard
  EXPECT_GT(stats.retained_snapshot_bytes, 0u);
  ASSERT_EQ(stats.shards.size(), 2u);
  std::uint64_t shard_completed = 0;
  for (const ShardStats& shard : stats.shards) {
    shard_completed += shard.completed;
    EXPECT_GE(shard.retained_snapshots, 1u);
  }
  EXPECT_EQ(shard_completed, 4u);
}

}  // namespace
}  // namespace whyprov
