// Tests of the plan-time CNF inprocessing pass (sat/simplify.h) and its
// witness side (sat/reconstruction.h): per-technique unit tests (unit
// propagation, failed-literal probing, equivalent-literal substitution,
// subsumption + self-subsuming resolution, bounded variable elimination),
// reconstruction round-trips, the frozen-variable invariant, a randomized
// differential harness (simplify + reconstruct preserves the exact set of
// models projected onto the frozen variables), and end-to-end enumeration
// equivalence — simplified vs off must produce identical provenance
// families on every scenario generator, through deltas and through the
// sharded serving stack (the latter also under the TSan CI job).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sat/reconstruction.h"
#include "sat/simplify.h"
#include "scenarios/scenarios.h"
#include "tests/workspace.h"
#include "util/rng.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using sat::CnfFormula;
using sat::LBool;
using sat::Lit;
using sat::SimplifyMode;
using sat::SimplifyOptions;
using sat::SimplifyResult;
using sat::Var;
using whyprov::testing::FamilyToStrings;
namespace dl = whyprov::datalog;
namespace pv = whyprov::provenance;
namespace sc = whyprov::scenarios;

Lit P(Var v) { return Lit::Make(v, false); }
Lit N(Var v) { return Lit::Make(v, true); }

CnfFormula MakeFormula(int num_vars, std::vector<std::vector<Lit>> clauses) {
  CnfFormula formula;
  formula.num_vars = num_vars;
  formula.clauses = std::move(clauses);
  return formula;
}

bool SatisfiesClause(const std::vector<Lit>& clause,
                     const std::vector<bool>& values) {
  for (const Lit lit : clause) {
    if (values[static_cast<std::size_t>(lit.var())] != lit.negated()) {
      return true;
    }
  }
  return false;
}

bool SatisfiesFormula(const CnfFormula& formula,
                      const std::vector<bool>& values) {
  for (const auto& clause : formula.clauses) {
    if (!SatisfiesClause(clause, values)) return false;
  }
  return true;
}

std::vector<bool> Assignment(int num_vars, std::uint32_t mask) {
  std::vector<bool> values(static_cast<std::size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) {
    values[static_cast<std::size_t>(v)] = ((mask >> v) & 1u) != 0;
  }
  return values;
}

/// All models of `formula`, projected onto `frozen` (in that order), by
/// brute force. Only for the small formulas these tests build.
std::set<std::vector<bool>> ProjectedModels(const CnfFormula& formula,
                                            const std::vector<Var>& frozen) {
  EXPECT_LE(formula.num_vars, 20);
  std::set<std::vector<bool>> projections;
  const std::uint32_t limit = 1u << formula.num_vars;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const std::vector<bool> values = Assignment(formula.num_vars, mask);
    if (!SatisfiesFormula(formula, values)) continue;
    std::vector<bool> projection;
    projection.reserve(frozen.size());
    for (const Var v : frozen) {
      projection.push_back(values[static_cast<std::size_t>(v)]);
    }
    projections.insert(std::move(projection));
  }
  return projections;
}

/// All models of the *simplified* formula, projected onto the frozen
/// variables through the result's variable map.
std::set<std::vector<bool>> ProjectedSimplifiedModels(
    const SimplifyResult& result, const std::vector<Var>& frozen) {
  EXPECT_LE(result.formula.num_vars, 20);
  std::set<std::vector<bool>> projections;
  const std::uint32_t limit = 1u << result.formula.num_vars;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const std::vector<bool> values = Assignment(result.formula.num_vars, mask);
    if (!SatisfiesFormula(result.formula, values)) continue;
    std::vector<bool> projection;
    projection.reserve(frozen.size());
    for (const Var v : frozen) {
      const Lit mapped = result.MapLit(P(v));
      EXPECT_TRUE(mapped.defined()) << "frozen var " << v << " was removed";
      if (!mapped.defined()) return projections;
      projection.push_back(values[static_cast<std::size_t>(mapped.var())] !=
                           mapped.negated());
    }
    projections.insert(std::move(projection));
  }
  return projections;
}

/// Translates a simplified-space assignment back to the original variable
/// space and replays the reconstruction stack. kUndef survivors read as
/// false (matching the enumeration layer's convention).
std::vector<bool> Reconstruct(const SimplifyResult& result,
                              const std::vector<bool>& simplified_values) {
  std::vector<LBool> model(
      static_cast<std::size_t>(result.num_original_vars), LBool::kUndef);
  for (Var v = 0; v < result.num_original_vars; ++v) {
    const Lit mapped = result.var_map[static_cast<std::size_t>(v)];
    if (!mapped.defined()) continue;
    const bool value =
        simplified_values[static_cast<std::size_t>(mapped.var())] !=
        mapped.negated();
    model[static_cast<std::size_t>(v)] = value ? LBool::kTrue : LBool::kFalse;
  }
  result.stack.Extend(model);
  std::vector<bool> values(model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    values[i] = model[i] == LBool::kTrue;
  }
  return values;
}

/// The full contract in one check: same projected model set, every frozen
/// variable alive, and every simplified model reconstructs to a model of
/// the original formula with the same frozen projection.
void CheckPreservesProjectedModels(const CnfFormula& original,
                                   const std::vector<Var>& frozen,
                                   const std::vector<Var>& eliminable,
                                   const SimplifyOptions& options) {
  const SimplifyResult result =
      sat::Simplify(original, frozen, eliminable, options);
  ASSERT_EQ(result.num_original_vars, original.num_vars);
  for (const Var v : frozen) {
    EXPECT_TRUE(result.var_map[static_cast<std::size_t>(v)].defined())
        << "frozen var " << v << " did not survive";
  }
  const auto expected = ProjectedModels(original, frozen);
  const auto actual = ProjectedSimplifiedModels(result, frozen);
  ASSERT_EQ(actual, expected);
  if (result.proven_unsat) {
    EXPECT_TRUE(expected.empty());
    return;
  }

  const std::uint32_t limit = 1u << result.formula.num_vars;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const std::vector<bool> values = Assignment(result.formula.num_vars, mask);
    if (!SatisfiesFormula(result.formula, values)) continue;
    const std::vector<bool> reconstructed = Reconstruct(result, values);
    EXPECT_TRUE(SatisfiesFormula(original, reconstructed))
        << "reconstructed assignment falsifies the original formula";
    for (const Var v : frozen) {
      const Lit mapped = result.MapLit(P(v));
      const bool simplified_value =
          values[static_cast<std::size_t>(mapped.var())] != mapped.negated();
      EXPECT_EQ(reconstructed[static_cast<std::size_t>(v)], simplified_value)
          << "reconstruction changed frozen var " << v;
    }
  }
}

SimplifyOptions Fast() {
  SimplifyOptions options;
  options.mode = SimplifyMode::kFast;
  return options;
}

SimplifyOptions Full() {
  SimplifyOptions options;
  options.mode = SimplifyMode::kFull;
  return options;
}

// --- kOff is the identity ------------------------------------------------

TEST(SimplifyTest, OffModeIsIdentity) {
  const CnfFormula input =
      MakeFormula(3, {{P(0), P(1)}, {N(1), P(2)}, {P(0)}});
  SimplifyOptions options;
  options.mode = SimplifyMode::kOff;
  const SimplifyResult result = sat::Simplify(input, {0, 1, 2}, {}, options);
  EXPECT_EQ(result.formula.num_vars, 3);
  EXPECT_EQ(result.formula.clauses, input.clauses);
  EXPECT_TRUE(result.stack.empty());
  for (Var v = 0; v < 3; ++v) {
    EXPECT_EQ(result.MapLit(P(v)), P(v));
  }
}

// --- Unit propagation ----------------------------------------------------

TEST(SimplifyTest, UnitPropagationToFixpoint) {
  // x0; x0 -> x1; x1 -> x2. Everything is forced; the satisfied clause
  // (x2 | x3) disappears and only the frozen x3 keeps a column.
  const CnfFormula input = MakeFormula(
      4, {{P(0)}, {N(0), P(1)}, {N(1), P(2)}, {P(2), P(3)}});
  const SimplifyResult result = sat::Simplify(input, {3}, {}, Fast());
  EXPECT_GE(result.stats.units_fixed, 3u);
  EXPECT_EQ(result.formula.num_vars, 1);
  EXPECT_EQ(result.formula.num_clauses(), 0u);
  EXPECT_FALSE(result.MapLit(P(0)).defined());
  EXPECT_TRUE(result.MapLit(P(3)).defined());

  // The forced chain reconstructs to true regardless of x3.
  const std::vector<bool> reconstructed = Reconstruct(result, {false});
  EXPECT_TRUE(reconstructed[0]);
  EXPECT_TRUE(reconstructed[1]);
  EXPECT_TRUE(reconstructed[2]);
  CheckPreservesProjectedModels(input, {3}, {}, Fast());
}

TEST(SimplifyTest, FixedFrozenVariableKeepsExplicitUnit) {
  // Propagation fixes the frozen x1 = true; the output must still carry
  // that fact as a unit clause (decision pinning asserts over it).
  const CnfFormula input = MakeFormula(2, {{P(0)}, {N(0), P(1)}});
  const SimplifyResult result = sat::Simplify(input, {1}, {}, Fast());
  ASSERT_TRUE(result.MapLit(P(1)).defined());
  ASSERT_EQ(result.formula.num_clauses(), 1u);
  EXPECT_EQ(result.formula.clauses[0],
            std::vector<Lit>{result.MapLit(P(1))});
  CheckPreservesProjectedModels(input, {1}, {}, Fast());
}

TEST(SimplifyTest, ProvesUnsatOutright) {
  const CnfFormula input = MakeFormula(2, {{P(0)}, {N(0)}, {P(1)}});
  const SimplifyResult result = sat::Simplify(input, {1}, {}, Fast());
  EXPECT_TRUE(result.proven_unsat);
  EXPECT_TRUE(result.formula.contains_empty_clause);
  EXPECT_TRUE(result.MapLit(P(1)).defined());
  CheckPreservesProjectedModels(input, {1}, {}, Fast());
}

// --- Failed-literal probing ----------------------------------------------

TEST(SimplifyTest, FailedLiteralProbing) {
  // Assuming x0 propagates x1 and !x1: x0 is a failed literal, so !x0 is
  // forced, which in turn forces the frozen x2 through (x0 | x2).
  const CnfFormula input =
      MakeFormula(3, {{N(0), P(1)}, {N(0), N(1)}, {P(0), P(2)}});
  const SimplifyResult result = sat::Simplify(input, {2}, {}, Fast());
  EXPECT_GE(result.stats.failed_literals, 1u);
  ASSERT_TRUE(result.MapLit(P(2)).defined());
  ASSERT_EQ(result.formula.num_clauses(), 1u);
  EXPECT_EQ(result.formula.clauses[0],
            std::vector<Lit>{result.MapLit(P(2))});
  CheckPreservesProjectedModels(input, {2}, {}, Fast());
}

// --- Equivalent-literal substitution -------------------------------------

TEST(SimplifyTest, BinaryImplicationEquivalence) {
  // (x0 <-> x1) via two binaries; x1 is substituted away and its
  // occurrences rewritten onto x0.
  const CnfFormula input = MakeFormula(
      4, {{N(0), P(1)}, {P(0), N(1)}, {P(0), P(2)}, {P(1), P(3)}});
  const SimplifyResult result = sat::Simplify(input, {2, 3}, {}, Fast());
  EXPECT_GE(result.stats.equivalences, 1u);
  // Exactly one of x0/x1 survives; the frozen vars always do.
  EXPECT_NE(result.MapLit(P(0)).defined(), result.MapLit(P(1)).defined());
  EXPECT_TRUE(result.MapLit(P(2)).defined());
  EXPECT_TRUE(result.MapLit(P(3)).defined());
  CheckPreservesProjectedModels(input, {2, 3}, {}, Fast());
}

TEST(SimplifyTest, EquivalenceRepresentativePrefersFrozen) {
  // x0 == x1 with x1 frozen: the class representative must be the frozen
  // variable, and the non-frozen x0 is the one substituted away.
  const CnfFormula input =
      MakeFormula(3, {{N(0), P(1)}, {P(0), N(1)}, {P(0), P(2)}});
  const SimplifyResult result = sat::Simplify(input, {1, 2}, {}, Fast());
  EXPECT_TRUE(result.MapLit(P(1)).defined());
  EXPECT_FALSE(result.MapLit(P(0)).defined());
  CheckPreservesProjectedModels(input, {1, 2}, {}, Fast());
}

TEST(SimplifyTest, EquivalentFrozenVariablesBothSurvive) {
  // Two frozen variables proved equivalent: neither may be removed, so
  // the output keeps both columns tied together by binaries.
  const CnfFormula input =
      MakeFormula(3, {{N(0), P(1)}, {P(0), N(1)}, {P(0), P(2)}});
  const SimplifyResult result = sat::Simplify(input, {0, 1}, {}, Fast());
  EXPECT_TRUE(result.MapLit(P(0)).defined());
  EXPECT_TRUE(result.MapLit(P(1)).defined());
  const auto projections = ProjectedSimplifiedModels(result, {0, 1});
  EXPECT_EQ(projections, ProjectedModels(input, {0, 1}));
  CheckPreservesProjectedModels(input, {0, 1}, {}, Fast());
}

// --- Subsumption and self-subsuming resolution ---------------------------

TEST(SimplifyTest, BackwardSubsumption) {
  // (x0 | x1) subsumes (x0 | x1 | x2).
  const CnfFormula input =
      MakeFormula(3, {{P(0), P(1)}, {P(0), P(1), P(2)}});
  const SimplifyResult result = sat::Simplify(input, {0, 1, 2}, {}, Fast());
  EXPECT_GE(result.stats.clauses_subsumed, 1u);
  EXPECT_EQ(result.formula.num_clauses(), 1u);
  CheckPreservesProjectedModels(input, {0, 1, 2}, {}, Fast());
}

TEST(SimplifyTest, SelfSubsumingResolutionStrengthens) {
  // (x0 | x1) self-subsumes (!x0 | x1 | x2) down to (x1 | x2).
  const CnfFormula input =
      MakeFormula(3, {{P(0), P(1)}, {N(0), P(1), P(2)}});
  const SimplifyResult result = sat::Simplify(input, {0, 1, 2}, {}, Fast());
  EXPECT_GE(result.stats.clauses_strengthened, 1u);
  std::size_t total_literals = 0;
  for (const auto& clause : result.formula.clauses) {
    total_literals += clause.size();
  }
  EXPECT_LT(total_literals, input.num_literals());
  CheckPreservesProjectedModels(input, {0, 1, 2}, {}, Fast());
}

// --- Bounded variable elimination ----------------------------------------

TEST(SimplifyTest, EliminatesAuxiliaryVariable) {
  // x2 is a Tseitin definition x2 == (x0 & x1) plus one use (x2 | x3):
  // distributing it yields two non-tautological resolvents, strictly
  // fewer clauses, so no-growth elimination fires.
  const CnfFormula input = MakeFormula(4, {{N(2), P(0)},
                                           {N(2), P(1)},
                                           {P(2), N(0), N(1)},
                                           {P(2), P(3)}});
  const SimplifyResult result =
      sat::Simplify(input, {0, 1, 3}, {2}, Fast());
  EXPECT_GE(result.stats.vars_eliminated, 1u);
  EXPECT_FALSE(result.MapLit(P(2)).defined());
  CheckPreservesProjectedModels(input, {0, 1, 3}, {2}, Fast());
}

TEST(SimplifyTest, EliminationRespectsEliminableSet) {
  // The same formula with an empty eliminable set: x2 must survive (it
  // is neither frozen nor eliminable, but elimination may only touch the
  // caller's set — structural vars never qualify).
  const CnfFormula input = MakeFormula(4, {{N(2), P(0)},
                                           {N(2), P(1)},
                                           {P(2), N(0), N(1)},
                                           {P(2), P(3)}});
  const SimplifyResult result = sat::Simplify(input, {0, 1, 3}, {}, Fast());
  EXPECT_EQ(result.stats.vars_eliminated, 0u);
  EXPECT_TRUE(result.MapLit(P(2)).defined());
  CheckPreservesProjectedModels(input, {0, 1, 3}, {}, Fast());
}

// --- Reconstruction stack in isolation -----------------------------------

TEST(ReconstructionTest, ReplaysInReverseOrder) {
  // Chronology: x1 is substituted by !x0 while x0 is still alive, then
  // x0 is fixed to true. Replayed in reverse, the unit lands first, so
  // the equivalence record resolves against the recovered x0.
  sat::ReconstructionStack stack;
  stack.PushEquiv(1, N(0));
  stack.PushUnit(0, true);
  std::vector<LBool> model(2, LBool::kUndef);
  stack.Extend(model);
  EXPECT_EQ(model[0], LBool::kTrue);
  EXPECT_EQ(model[1], LBool::kFalse);
}

TEST(ReconstructionTest, EliminatedWitnessFlipsOnlyWhenNeeded) {
  // v=2 eliminated; recorded positive-occurrence clauses (minus v):
  // {x0}. If x0 is false the clause (x2 | x0) is unsatisfied without
  // x2, so x2 must flip to true; if x0 is true, x2 defaults to false.
  sat::ReconstructionStack stack;
  stack.PushEliminated(2, {{P(0)}});
  std::vector<LBool> satisfied{LBool::kTrue, LBool::kUndef, LBool::kUndef};
  stack.Extend(satisfied);
  EXPECT_EQ(satisfied[2], LBool::kFalse);
  std::vector<LBool> violated{LBool::kFalse, LBool::kUndef, LBool::kUndef};
  stack.Extend(violated);
  EXPECT_EQ(violated[2], LBool::kTrue);
}

// --- Randomized differential harness -------------------------------------

/// Random small CNFs with a random frozen set: simplify (fast and full)
/// must preserve the exact projected model set, and every simplified
/// model must reconstruct to an original model. This is the semantic
/// contract the whole enumeration layer leans on.
TEST(SimplifyPropertyTest, RandomFormulasPreserveProjectedModels) {
  util::Rng rng(20240611);
  for (int iteration = 0; iteration < 150; ++iteration) {
    const int num_vars = 3 + static_cast<int>(rng.UniformInt(8));  // 3..10
    const std::size_t num_clauses = 1 + rng.UniformInt(28);
    std::vector<std::vector<Lit>> clauses;
    for (std::size_t c = 0; c < num_clauses; ++c) {
      const std::size_t width = 1 + rng.UniformInt(3);
      std::vector<Lit> clause;
      for (std::size_t i = 0; i < width; ++i) {
        const Var v = static_cast<Var>(rng.UniformInt(
            static_cast<std::uint64_t>(num_vars)));
        clause.push_back(Lit::Make(v, rng.Bernoulli(0.5)));
      }
      clauses.push_back(std::move(clause));
    }
    const CnfFormula input = MakeFormula(num_vars, std::move(clauses));

    std::vector<Var> frozen;
    std::vector<Var> eliminable;
    for (Var v = 0; v < num_vars; ++v) {
      if (rng.Bernoulli(0.5)) {
        frozen.push_back(v);
      } else if (rng.Bernoulli(0.7)) {
        eliminable.push_back(v);
      }
    }

    SCOPED_TRACE("iteration " + std::to_string(iteration));
    CheckPreservesProjectedModels(input, frozen, eliminable,
                                  iteration % 2 == 0 ? Fast() : Full());
  }
}

// --- Plans: frozen invariant and observability ---------------------------

TEST(SimplifyPlanTest, FrozenSelectorsSurviveInEveryPlan) {
  const sc::GeneratedScenario scenario = sc::MakeDoctors(1, 60, 7);
  EngineOptions options;
  options.plan_simplify = SimplifyMode::kFast;
  const Engine engine = scenario.MakeEngine(options);
  for (const dl::FactId target : engine.SampleAnswers(3)) {
    const auto prepared = engine.Prepare(target);
    ASSERT_TRUE(prepared.ok()) << prepared.status().message();
    const auto& plan = prepared.value().plan();
    ASSERT_TRUE(plan->simplified());
    // Every database-leaf fact selector must map to a live solver
    // literal: enumeration blocks on them and decision pins them.
    for (const dl::FactId leaf : plan->encoding().database_leaves) {
      const sat::Var original = plan->encoding().node_vars.at(leaf);
      EXPECT_TRUE(plan->SolverLitFor(original).defined())
          << "database-leaf selector eliminated for leaf " << leaf;
    }
    EXPECT_LE(plan->formula().num_vars,
              static_cast<int>(plan->simplify_stats().vars_before));
    EXPECT_GE(plan->timings().simplify_seconds, 0.0);
  }
}

TEST(SimplifyPlanTest, CacheAndServiceStatsReportSimplification) {
  const sc::GeneratedScenario scenario = sc::MakeDoctors(1, 60, 7);
  EngineOptions options;
  options.plan_simplify = SimplifyMode::kFast;
  Service service(scenario.MakeEngine(options));
  const auto targets = service.engine().SampleAnswers(3);
  ASSERT_FALSE(targets.empty());
  for (const dl::FactId target : targets) {
    EnumerateRequest enumerate;
    enumerate.target = target;
    enumerate.max_members = 2;
    Request request;
    request.op = std::move(enumerate);
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    ticket.value().Wait();
  }
  const PlanCacheStats cache_stats = service.engine().plan_cache_stats();
  EXPECT_GT(cache_stats.plans_simplified, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plans_simplified, cache_stats.plans_simplified);
  EXPECT_EQ(stats.simplify_vars_removed, cache_stats.simplify_vars_removed);
  EXPECT_EQ(stats.simplify_clauses_removed,
            cache_stats.simplify_clauses_removed);
}

// --- End to end: enumeration equivalence on every generator --------------

pv::ProvenanceFamily Drain(Enumeration& enumeration) {
  pv::ProvenanceFamily family;
  for (auto member = enumeration.Next(); member.has_value();
       member = enumeration.Next()) {
    family.insert(*member);
  }
  return family;
}

/// Exhaustive enumeration rendered canonically (sorted member strings):
/// the member *order* is a solver trajectory detail, the family *set* is
/// the paper's whyUN(t, D, Q) and must be byte-identical across modes.
std::set<std::string> EnumerateFamily(const Engine& engine,
                                      const std::string& target_text) {
  EnumerateRequest request;
  request.target_text = target_text;
  auto enumeration = engine.Enumerate(request);
  EXPECT_TRUE(enumeration.ok()) << enumeration.status().message();
  if (!enumeration.ok()) return {};
  return FamilyToStrings(Drain(enumeration.value()),
                         engine.model().symbols());
}

/// Serves the same targets from a simplify=off and a simplify=fast (and
/// =full) engine, through a remove/restore delta cycle, asserting the
/// enumerated families stay identical at every step. Also cross-checks
/// Decide verdicts on enumerated members and their subsets.
void CheckScenarioEquivalence(const sc::GeneratedScenario& scenario) {
  EngineOptions off_options;
  off_options.plan_simplify = SimplifyMode::kOff;
  EngineOptions fast_options;
  fast_options.plan_simplify = SimplifyMode::kFast;
  EngineOptions full_options;
  full_options.plan_simplify = SimplifyMode::kFull;
  Engine off = scenario.MakeEngine(off_options);
  Engine fast = scenario.MakeEngine(fast_options);
  Engine full = scenario.MakeEngine(full_options);

  std::vector<std::string> targets;
  for (const dl::FactId id : off.SampleAnswers(3)) {
    targets.push_back(off.FactToText(id));
  }
  ASSERT_FALSE(targets.empty());

  const auto check_phase = [&](const std::string& label) {
    for (const std::string& target : targets) {
      const std::set<std::string> expected = EnumerateFamily(off, target);
      EXPECT_EQ(EnumerateFamily(fast, target), expected)
          << scenario.scenario_name << " [" << label
          << "]: fast diverges on " << target;
      EXPECT_EQ(EnumerateFamily(full, target), expected)
          << scenario.scenario_name << " [" << label
          << "]: full diverges on " << target;
    }
  };

  check_phase("v0");

  // Decide agreement: every member enumerated under off must be a member
  // under fast, and verdicts must agree on subsets too (which may or may
  // not be members — the point is the engines agree).
  for (const std::string& target : targets) {
    EnumerateRequest request;
    request.target_text = target;
    request.max_members = 3;
    auto enumeration = off.Enumerate(request);
    ASSERT_TRUE(enumeration.ok());
    for (auto member = enumeration.value().Next(); member.has_value();
         member = enumeration.value().Next()) {
      auto prepared_fast = fast.Prepare(target);
      auto prepared_off = off.Prepare(target);
      ASSERT_TRUE(prepared_fast.ok());
      ASSERT_TRUE(prepared_off.ok());
      DecideRequest decide;
      decide.candidate = *member;
      const auto fast_verdict = prepared_fast.value().Decide(decide);
      ASSERT_TRUE(fast_verdict.ok()) << fast_verdict.status().message();
      EXPECT_TRUE(fast_verdict.value())
          << scenario.scenario_name << ": enumerated member rejected by "
          << "the simplified decision path on " << target;
      if (member->size() > 1) {
        DecideRequest subset;
        subset.candidate = *member;
        subset.candidate.pop_back();
        const auto off_sub = prepared_off.value().Decide(subset);
        const auto fast_sub = prepared_fast.value().Decide(subset);
        ASSERT_TRUE(off_sub.ok());
        ASSERT_TRUE(fast_sub.ok());
        EXPECT_EQ(fast_sub.value(), off_sub.value())
            << scenario.scenario_name << ": subset verdicts diverge on "
            << target;
      }
    }
  }

  // Through a delta (plan invalidation + rebuild under the new model),
  // then back.
  const auto& facts = scenario.database.facts();
  ASSERT_FALSE(facts.empty());
  const dl::Fact churn = facts[facts.size() / 2];
  for (Engine* engine : {&off, &fast, &full}) {
    DeltaRequest removal;
    removal.removed_facts = {churn};
    const auto stats = engine->ApplyDelta(removal);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
  }
  check_phase("after-removal");
  for (Engine* engine : {&off, &fast, &full}) {
    DeltaRequest addition;
    addition.added_facts = {churn};
    const auto stats = engine->ApplyDelta(addition);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
  }
  check_phase("restored");

  // The fast engine must actually have simplified its plans (the
  // equivalence above would hold vacuously if the pass never ran).
  EXPECT_GT(fast.plan_cache_stats().plans_simplified, 0u);
}

TEST(SimplifyEquivalenceTest, TransClosureSparse) {
  CheckScenarioEquivalence(
      sc::MakeTransClosure(sc::GraphKind::kSparse, 40, 60, 20240611));
}

TEST(SimplifyEquivalenceTest, TransClosureSocial) {
  CheckScenarioEquivalence(
      sc::MakeTransClosure(sc::GraphKind::kSocial, 16, 24, 20240611));
}

TEST(SimplifyEquivalenceTest, Doctors) {
  CheckScenarioEquivalence(sc::MakeDoctors(1, 100, 20240611));
}

TEST(SimplifyEquivalenceTest, Galen) {
  CheckScenarioEquivalence(sc::MakeGalen(20, 20240611));
}

TEST(SimplifyEquivalenceTest, Andersen) {
  CheckScenarioEquivalence(sc::MakeAndersen(100, 20240611));
}

TEST(SimplifyEquivalenceTest, Csda) {
  CheckScenarioEquivalence(sc::MakeCsda("httpd", 200, 20240611));
}

// --- End to end: through the sharded stack -------------------------------

std::set<std::string> ShardedFamilies(ShardedService& service,
                                      const std::vector<std::string>& targets,
                                      const dl::SymbolTable& symbols) {
  std::set<std::string> rendered;
  for (const std::string& target : targets) {
    EnumerateRequest enumerate;
    enumerate.target_text = target;
    Request request;
    request.op = std::move(enumerate);
    auto ticket = service.Submit(std::move(request));
    EXPECT_TRUE(ticket.ok()) << ticket.status().message();
    if (!ticket.ok()) continue;
    const Response response = ticket.value().Take();
    EXPECT_TRUE(response.status.ok()) << response.status.message();
    for (const auto& member : response.members) {
      rendered.insert(target + " " +
                      whyprov::testing::MemberToString(member, symbols));
    }
  }
  return rendered;
}

TEST(SimplifyShardedTest, ShardedServingMatchesOff) {
  const sc::GeneratedScenario scenario = sc::MakeDoctors(1, 100, 20240611);
  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  ASSERT_TRUE(predicate.ok());

  std::vector<std::string> targets;
  {
    Engine probe = scenario.MakeEngine();
    for (const dl::FactId id : probe.SampleAnswers(3)) {
      targets.push_back(probe.FactToText(id));
    }
  }
  ASSERT_FALSE(targets.empty());

  std::set<std::string> off_families;
  std::set<std::string> fast_families;
  for (const SimplifyMode mode :
       {SimplifyMode::kOff, SimplifyMode::kFast}) {
    ShardedServiceOptions options;
    options.num_shards = 2;
    options.engine.plan_simplify = mode;
    auto sharded = ShardedService::Create(scenario.program, scenario.database,
                                          predicate.value(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    auto& families =
        mode == SimplifyMode::kOff ? off_families : fast_families;
    families =
        ShardedFamilies(*sharded.value(), targets, *scenario.symbols);
    if (mode == SimplifyMode::kFast) {
      // The aggregated stats must show the pass ran on the shards.
      EXPECT_GT(sharded.value()->stats().plans_simplified, 0u);
    }
  }
  EXPECT_FALSE(off_families.empty());
  EXPECT_EQ(fast_families, off_families);
}

}  // namespace
}  // namespace whyprov
