// Parameterized sweeps over the SAT solver's configuration space: every
// option combination must preserve correctness (against brute force), and
// the Luby sequence must be the real thing.

#include <tuple>

#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace whyprov::sat {
namespace {

CnfFormula RandomThreeCnf(util::Rng& rng, int num_vars, int num_clauses) {
  CnfFormula formula;
  formula.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    std::vector<int> clause;
    while (clause.size() < 3) {
      const int v = static_cast<int>(rng.UniformInt(num_vars)) + 1;
      const int lit = rng.Bernoulli(0.5) ? v : -v;
      bool dup = false;
      for (int l : clause) {
        if (std::abs(l) == v) dup = true;
      }
      if (!dup) clause.push_back(lit);
    }
    formula.clauses.push_back(clause);
  }
  return formula;
}

// (phase_saving, restart_base, var_decay, reduce_base)
using OptionTuple = std::tuple<bool, int, double, int>;

class SolverOptionsTest : public ::testing::TestWithParam<OptionTuple> {};

TEST_P(SolverOptionsTest, CorrectUnderAllConfigurations) {
  const auto& [phase_saving, restart_base, var_decay, reduce_base] =
      GetParam();
  SolverOptions options;
  options.phase_saving = phase_saving;
  options.restart_base = restart_base;
  options.var_decay = var_decay;
  options.reduce_base = reduce_base;

  util::Rng rng(0x0b7 + restart_base);
  for (int trial = 0; trial < 10; ++trial) {
    const CnfFormula formula = RandomThreeCnf(rng, 10, 43);  // near threshold
    const bool expected = BruteForceSat(formula);
    Solver solver(options);
    const bool loaded = LoadIntoSolver(formula, solver);
    if (!loaded) {
      EXPECT_FALSE(expected);
      continue;
    }
    EXPECT_EQ(solver.Solve() == SolveResult::kSat, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverOptionsTest,
    ::testing::Combine(::testing::Values(false, true),
                       ::testing::Values(2, 100),
                       ::testing::Values(0.8, 0.95),
                       ::testing::Values(16, 4000)));

TEST(SolverOptionsTest, TinyReduceBaseStillSolvesUnsat) {
  // Aggressive clause deletion must not break completeness.
  SolverOptions options;
  options.reduce_base = 8;
  options.reduce_increment = 4;
  Solver solver(options);
  // Pigeonhole 5 into 4.
  const int holes = 4, pigeons = 5;
  auto var = [&](int p, int h) { return Lit::Make(p * holes + h, false); };
  for (int i = 0; i < pigeons * holes; ++i) solver.NewVar();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    ASSERT_TRUE(solver.AddClause(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(solver.AddClause({~var(p1, h), ~var(p2, h)}));
      }
    }
  }
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().deleted_clauses, 0u);
}

TEST(SolverOptionsTest, PolarityHintsSteerTheFirstModel) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  ASSERT_TRUE(solver.AddBinary(Lit::Make(a, false), Lit::Make(b, false)));
  solver.SetPolarity(a, true);
  solver.SetPolarity(b, false);
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(a), LBool::kTrue);
  EXPECT_EQ(solver.ModelValue(b), LBool::kFalse);
}

TEST(SolverOptionsTest, ActivityHintsChangeDecisionOrder) {
  Solver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  // a free, b free: whichever is decided first gets its phase; hint b up
  // with phase true while a stays default (false).
  solver.BumpActivityHint(b, 10.0);
  solver.SetPolarity(b, true);
  ASSERT_TRUE(solver.AddBinary(Lit::Make(a, false), Lit::Make(b, false)));
  ASSERT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(b), LBool::kTrue);
}

}  // namespace
}  // namespace whyprov::sat
