// Tests of the durability tier: WAL framing and torn-tail recovery,
// checkpoint encode/decode exactness, and — the core contract — a
// serving stack restarted from checkpoint + WAL tail must serve
// byte-identical answers to the never-restarted process, across all six
// scenario generators with interleaved deltas, for the in-process
// Service and both sharded policies. Kill points are simulated by
// truncating and corrupting the on-disk files directly. The CI runs
// this binary under ThreadSanitizer.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "scenarios/scenarios.h"
#include "storage/checkpoint.h"
#include "storage/durable_store.h"
#include "storage/wal.h"
#include "tests/workspace.h"
#include "whyprov.h"

namespace whyprov {
namespace {

using whyprov::testing::MemberToString;
namespace dl = whyprov::datalog;

/// A fresh empty data directory under the system temp dir.
std::string TempDataDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "whyprov_test_storage" / name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- WAL framing and torn tails ------------------------------------------

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  storage::WalRecord record;
  record.sequence = 7;
  record.added = {"edge(a, b)", "edge(b, c)"};
  record.removed = {"edge(c, d)"};
  const std::string payload = storage::EncodeWalRecord(record);
  auto decoded = storage::DecodeWalRecord(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded.value().sequence, 7u);
  EXPECT_EQ(decoded.value().added, record.added);
  EXPECT_EQ(decoded.value().removed, record.removed);
  EXPECT_EQ(storage::EncodeWalRecord(decoded.value()), payload);
}

TEST(WalRecordTest, RejectsUnknownTypeAndTruncation) {
  storage::WalRecord record;
  record.sequence = 1;
  record.added = {"edge(a, b)"};
  std::string payload = storage::EncodeWalRecord(record);
  std::string bad_type = payload;
  bad_type[0] = '\x7f';
  EXPECT_FALSE(storage::DecodeWalRecord(bad_type).ok());
  EXPECT_FALSE(
      storage::DecodeWalRecord(std::string_view(payload).substr(0, 5)).ok());
  EXPECT_FALSE(storage::DecodeWalRecord(payload + "x").ok());
}

TEST(WalFileTest, AppendThenReopenRecoversEveryRecord) {
  const std::string dir = TempDataDir("wal_reopen");
  const std::string path = dir + "/delta.wal";
  {
    auto wal = storage::WriteAheadLog::Open(path, /*fsync_each=*/false);
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    for (int i = 0; i < 3; ++i) {
      auto written =
          wal.value().Append({"edge(a" + std::to_string(i) + ", b)"}, {});
      ASSERT_TRUE(written.ok()) << written.status().message();
      EXPECT_GT(written.value(), 0u);
    }
    EXPECT_EQ(wal.value().last_sequence(), 3u);
  }
  auto reopened = storage::WriteAheadLog::Open(path, false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_FALSE(reopened.value().truncated_torn_tail());
  ASSERT_EQ(reopened.value().recovered().size(), 3u);
  EXPECT_EQ(reopened.value().recovered()[2].sequence, 3u);
  EXPECT_EQ(reopened.value().recovered()[1].added,
            std::vector<std::string>{"edge(a1, b)"});
}

TEST(WalFileTest, TornTailIsTruncatedAndAppendsContinue) {
  const std::string dir = TempDataDir("wal_torn");
  const std::string path = dir + "/delta.wal";
  {
    auto wal = storage::WriteAheadLog::Open(path, false);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value().Append({"edge(a, b)"}, {}).ok());
    ASSERT_TRUE(wal.value().Append({"edge(b, c)"}, {}).ok());
  }
  const std::string intact = ReadFileBytes(path);
  // A crash mid-append leaves a short tail: half of a third record.
  WriteFileBytes(path, intact + std::string("\x20\x00\x00\x00\xde\xad", 6));
  {
    auto wal = storage::WriteAheadLog::Open(path, false);
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    EXPECT_TRUE(wal.value().truncated_torn_tail());
    ASSERT_EQ(wal.value().recovered().size(), 2u);
    // The torn bytes are gone from disk and the sequence continues.
    ASSERT_TRUE(wal.value().Append({}, {"edge(a, b)"}).ok());
    EXPECT_EQ(wal.value().last_sequence(), 3u);
  }
  EXPECT_EQ(ReadFileBytes(path).substr(0, intact.size()), intact);
  auto reopened = storage::WriteAheadLog::Open(path, false);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened.value().truncated_torn_tail());
  EXPECT_EQ(reopened.value().recovered().size(), 3u);
}

TEST(WalFileTest, CorruptCrcDropsTheRecordAndItsSuffix) {
  const std::string dir = TempDataDir("wal_crc");
  const std::string path = dir + "/delta.wal";
  std::size_t first_record_end = 0;
  {
    auto wal = storage::WriteAheadLog::Open(path, false);
    ASSERT_TRUE(wal.ok());
    auto first = wal.value().Append({"edge(a, b)"}, {});
    ASSERT_TRUE(first.ok());
    first_record_end = storage::kWalMagic.size() + 1 + first.value();
    ASSERT_TRUE(wal.value().Append({"edge(b, c)"}, {}).ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[first_record_end + 10] ^= '\x01';  // flip a bit inside record 2
  WriteFileBytes(path, bytes);
  auto wal = storage::WriteAheadLog::Open(path, false);
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  EXPECT_TRUE(wal.value().truncated_torn_tail());
  ASSERT_EQ(wal.value().recovered().size(), 1u);
  EXPECT_EQ(wal.value().recovered()[0].added,
            std::vector<std::string>{"edge(a, b)"});
}

TEST(WalReplayTest, StopsAtOversizedLengthAndBadSequence) {
  // An absurd length field cannot be honest: nothing valid follows.
  std::string oversized(8, '\0');
  oversized[0] = '\x01';
  oversized[3] = '\x7f';
  const storage::WalReplay replay = storage::ReplayWalBuffer(oversized);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, 0u);
}

// --- checkpoint exactness -------------------------------------------------

TEST(CheckpointTest, RoundTripIsByteExactAfterChurn) {
  auto scenario =
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60, 7);
  Engine engine = scenario.MakeEngine();
  // Remove and restore one fact so some relation's insertion order
  // diverges from id order (revival appends at the end) — the case
  // where set-equality of facts would not reproduce enumeration order.
  const std::string churn =
      dl::FactToString(scenario.database.facts().front(),
                       scenario.database.symbols());
  DeltaRequest remove;
  remove.removed_fact_texts = {churn};
  ASSERT_TRUE(engine.ApplyDelta(remove).ok());
  DeltaRequest restore;
  restore.added_fact_texts = {churn};
  ASSERT_TRUE(engine.ApplyDelta(restore).ok());

  const std::shared_ptr<const EngineState> state = engine.PinSnapshot();
  const std::string image =
      storage::EncodeCheckpoint(state->model, state->model_version,
                                /*wal_records_folded=*/2);

  // Restore over a freshly parsed stack (same generator, same seed).
  auto fresh =
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60, 7);
  Engine fresh_engine = fresh.MakeEngine();
  auto recovered = storage::DecodeCheckpoint(
      image, fresh_engine.PinSnapshot()->model.symbols_ptr());
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value().model_version, state->model_version);
  EXPECT_EQ(recovered.value().wal_records_folded, 2u);
  // Exactness: re-encoding the restored model reproduces the image.
  EXPECT_EQ(storage::EncodeCheckpoint(recovered.value().model,
                                      state->model_version, 2),
            image);
}

TEST(CheckpointTest, CorruptImagesFailCleanly) {
  auto scenario =
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60, 7);
  Engine engine = scenario.MakeEngine();
  const std::shared_ptr<const EngineState> state = engine.PinSnapshot();
  const std::string image =
      storage::EncodeCheckpoint(state->model, state->model_version, 0);
  const auto symbols = state->model.symbols_ptr();

  EXPECT_FALSE(storage::DecodeCheckpoint("", symbols).ok());
  EXPECT_FALSE(storage::DecodeCheckpoint("junk", symbols).ok());
  std::string flipped = image;
  flipped[flipped.size() / 2] ^= '\x01';
  EXPECT_FALSE(storage::DecodeCheckpoint(flipped, symbols).ok());
  std::string truncated = image.substr(0, image.size() - 3);
  EXPECT_FALSE(storage::DecodeCheckpoint(truncated, symbols).ok());
}

// --- the restart-equivalence harness --------------------------------------

using SubmitFn = std::function<Response(Request)>;

SubmitFn Submitter(Service& service) {
  return [&service](Request request) {
    auto ticket = service.Submit(std::move(request));
    EXPECT_TRUE(ticket.ok()) << ticket.status().message();
    if (!ticket.ok()) return Response();
    return ticket.value().Take();
  };
}

SubmitFn Submitter(ShardedService& service) {
  return [&service](Request request) {
    auto ticket = service.Submit(std::move(request));
    EXPECT_TRUE(ticket.ok()) << ticket.status().message();
    if (!ticket.ok()) return Response();
    return ticket.value().Take();
  };
}

/// The same scripted mixed workload the sharding equivalence tests use:
/// enumerate / decide over every target, interleaved with awaited
/// remove-then-restore deltas, rendered into a transcript. Because the
/// churn ends fully restored, the post-script state equals the base
/// state — so a recovered stack replaying the log must reproduce this
/// exact transcript when the script runs again.
std::vector<std::string> RunScript(const SubmitFn& submit,
                                   const std::vector<std::string>& targets,
                                   const std::vector<std::string>& churn,
                                   const dl::SymbolTable& symbols) {
  std::vector<std::string> transcript;
  std::vector<std::vector<dl::Fact>> candidates(targets.size());

  const auto read_phase = [&](const std::string& label) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      EnumerateRequest enumerate;
      enumerate.target_text = targets[i];
      enumerate.max_members = 8;
      Request request;
      request.op = std::move(enumerate);
      Response response = submit(std::move(request));
      std::string line =
          label + " enum " + targets[i] + " " +
          std::string(util::StatusCodeName(response.status.code()));
      for (const auto& member : response.members) {
        line += " " + MemberToString(member, symbols);
      }
      transcript.push_back(std::move(line));
      if (candidates[i].empty() && !response.members.empty()) {
        candidates[i] = response.members.front();
      }
      if (!candidates[i].empty()) {
        DecideRequest decide;
        decide.target_text = targets[i];
        decide.candidate = candidates[i];
        Request decide_request;
        decide_request.op = std::move(decide);
        Response verdict = submit(std::move(decide_request));
        transcript.push_back(
            label + " decide " + targets[i] + " " +
            std::string(util::StatusCodeName(verdict.status.code())) +
            (verdict.status.ok()
                 ? (verdict.member ? " member" : " non-member")
                 : ""));
      }
    }
  };

  read_phase("v0");
  for (std::size_t d = 0; d < churn.size(); ++d) {
    DeltaRequest remove;
    remove.removed_fact_texts = {churn[d]};
    Request request;
    request.op = std::move(remove);
    Response response = submit(std::move(request));
    transcript.push_back(
        "del " + churn[d] + " " +
        std::string(util::StatusCodeName(response.status.code())));
    read_phase("d" + std::to_string(d));
  }
  for (std::size_t d = 0; d < churn.size(); ++d) {
    DeltaRequest restore;
    restore.added_fact_texts = {churn[d]};
    Request request;
    request.op = std::move(restore);
    Response response = submit(std::move(request));
    transcript.push_back(
        "add " + churn[d] + " " +
        std::string(util::StatusCodeName(response.status.code())));
  }
  read_phase("restored");
  return transcript;
}

/// Samples targets and churn facts from a scenario deterministically.
void ScenarioScript(const scenarios::GeneratedScenario& scenario,
                    std::size_t num_targets, std::size_t num_churn,
                    std::vector<std::string>& targets,
                    std::vector<std::string>& churn) {
  Engine probe = scenario.MakeEngine();
  for (const dl::FactId id : probe.SampleAnswers(num_targets)) {
    targets.push_back(probe.FactToText(id));
  }
  const std::vector<dl::Fact>& facts = scenario.database.facts();
  for (std::size_t i = 1; i <= num_churn && i <= facts.size(); ++i) {
    const dl::Fact& fact = facts[(i * facts.size()) / (num_churn + 1)];
    churn.push_back(dl::FactToString(fact, scenario.database.symbols()));
  }
}

/// The core durability contract, exercised three ways on one scenario:
///  1. a WAL-on service must serve the exact transcript of a WAL-off
///     reference (durability is invisible to answers);
///  2. a stack restarted from checkpoint + WAL tail must serve it again
///     (byte-identical post-recovery answers);
///  3. with the checkpoint corrupted, recovery must fall back to
///     full-log replay and still serve it.
void CheckDurableEquivalence(const scenarios::GeneratedScenario& scenario,
                             const std::string& dir_name) {
  std::vector<std::string> targets;
  std::vector<std::string> churn;
  ScenarioScript(scenario, /*num_targets=*/3, /*num_churn=*/2, targets,
                 churn);
  ASSERT_FALSE(targets.empty());

  Service reference(scenario.MakeEngine());
  const std::vector<std::string> expected =
      RunScript(Submitter(reference), targets, churn, *scenario.symbols);

  const std::string data_dir = TempDataDir(dir_name);
  EngineOptions durable_options;
  durable_options.data_dir = data_dir;
  durable_options.checkpoint_interval = 1;  // checkpoint after every delta
  const std::uint64_t deltas = 2 * churn.size();

  {
    Service durable(scenario.MakeEngine(durable_options));
    ASSERT_TRUE(durable.durability_status().ok())
        << durable.durability_status().message();
    EXPECT_EQ(RunScript(Submitter(durable), targets, churn,
                        *scenario.symbols),
              expected)
        << scenario.scenario_name << ": WAL-on serving diverged";
    const ServiceStats stats = durable.stats();
    EXPECT_EQ(stats.wal_appends, deltas);
    EXPECT_GT(stats.wal_bytes, 0u);
    EXPECT_GE(stats.checkpoints_written, 1u);
    EXPECT_EQ(stats.recovery_replayed_deltas, 0u);
  }

  {
    Service recovered(scenario.MakeEngine(durable_options));
    ASSERT_TRUE(recovered.durability_status().ok())
        << recovered.durability_status().message();
    // The last checkpoint folded every record (interval 1), so the
    // replayed tail is empty — recovery came from the snapshot.
    EXPECT_EQ(recovered.stats().recovery_replayed_deltas, 0u);
    EXPECT_EQ(RunScript(Submitter(recovered), targets, churn,
                        *scenario.symbols),
              expected)
        << scenario.scenario_name << ": post-recovery answers diverged";
  }

  // Kill point: the checkpoint is corrupt. The WAL is never compacted,
  // so full-log replay (now 2x `deltas` records) must reproduce the
  // same state.
  std::string image = ReadFileBytes(data_dir + "/model.ckpt");
  ASSERT_FALSE(image.empty());
  image[image.size() / 2] ^= '\x01';
  WriteFileBytes(data_dir + "/model.ckpt", image);
  {
    Service replayed(scenario.MakeEngine(durable_options));
    ASSERT_TRUE(replayed.durability_status().ok())
        << replayed.durability_status().message();
    EXPECT_EQ(replayed.stats().recovery_replayed_deltas, 2 * deltas);
    EXPECT_EQ(RunScript(Submitter(replayed), targets, churn,
                        *scenario.symbols),
              expected)
        << scenario.scenario_name << ": full-log replay diverged";
  }
}

// The six scenario generators: recovery must be invisible in the
// results on every one of them, across interleaved deltas.

TEST(DurableEquivalenceTest, TransClosureSparse) {
  CheckDurableEquivalence(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60,
                                  20240611),
      "svc_tc_sparse");
}

TEST(DurableEquivalenceTest, TransClosureSocial) {
  CheckDurableEquivalence(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSocial, 16, 24,
                                  20240611),
      "svc_tc_social");
}

TEST(DurableEquivalenceTest, Doctors) {
  CheckDurableEquivalence(scenarios::MakeDoctors(1, 100, 20240611),
                          "svc_doctors");
}

TEST(DurableEquivalenceTest, Andersen) {
  CheckDurableEquivalence(scenarios::MakeAndersen(100, 20240611),
                          "svc_andersen");
}

TEST(DurableEquivalenceTest, Galen) {
  CheckDurableEquivalence(scenarios::MakeGalen(20, 20240611), "svc_galen");
}

TEST(DurableEquivalenceTest, Csda) {
  CheckDurableEquivalence(scenarios::MakeCsda("httpd", 200, 20240611),
                          "svc_csda");
}

// --- sharded restarts -----------------------------------------------------

/// Restart-equivalence through ShardedService: one group-level store,
/// restored via lockstep AdoptRecovered (fact-range) or full-log replay
/// through the split-and-apply path (by-predicate).
void CheckShardedDurableRestart(const scenarios::GeneratedScenario& scenario,
                                ShardPolicy policy,
                                const std::string& dir_name) {
  std::vector<std::string> targets;
  std::vector<std::string> churn;
  ScenarioScript(scenario, /*num_targets=*/3, /*num_churn=*/2, targets,
                 churn);
  ASSERT_FALSE(targets.empty());
  const auto predicate =
      scenario.symbols->FindPredicate(scenario.answer_predicate);
  ASSERT_TRUE(predicate.ok());

  Service reference(scenario.MakeEngine());
  const std::vector<std::string> expected =
      RunScript(Submitter(reference), targets, churn, *scenario.symbols);

  ShardedServiceOptions options;
  options.num_shards = 2;
  options.policy = policy;
  options.engine.data_dir = TempDataDir(dir_name);
  options.engine.checkpoint_interval = 1;

  {
    auto sharded = ShardedService::Create(scenario.program, scenario.database,
                                          predicate.value(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    ASSERT_TRUE(sharded.value()->durability_status().ok())
        << sharded.value()->durability_status().message();
    EXPECT_EQ(RunScript(Submitter(*sharded.value()), targets, churn,
                        *scenario.symbols),
              expected)
        << scenario.scenario_name << ": durable sharded serving diverged";
    EXPECT_EQ(sharded.value()->stats().wal_appends, 2 * churn.size());
  }

  auto restarted = ShardedService::Create(scenario.program, scenario.database,
                                          predicate.value(), options);
  ASSERT_TRUE(restarted.ok()) << restarted.status().message();
  ASSERT_TRUE(restarted.value()->durability_status().ok())
      << restarted.value()->durability_status().message();
  const ServiceStats stats = restarted.value()->stats();
  if (restarted.value()->shard_map().policy() == ShardPolicy::kByPredicate) {
    // By-predicate shards diverge from any single model after splits, so
    // the group never checkpoints: recovery is always full-log replay.
    EXPECT_EQ(stats.checkpoints_written, 0u);
    EXPECT_EQ(stats.recovery_replayed_deltas, 2 * churn.size());
  }
  EXPECT_EQ(RunScript(Submitter(*restarted.value()), targets, churn,
                      *scenario.symbols),
            expected)
      << scenario.scenario_name << ": post-restart sharded answers diverged";
}

TEST(ShardedDurableRestartTest, FactRangeReplicas) {
  CheckShardedDurableRestart(
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60,
                                  20240611),
      ShardPolicy::kByFactRange, "shard_fact_range");
}

TEST(ShardedDurableRestartTest, ByPredicate) {
  CheckShardedDurableRestart(scenarios::MakeDoctors(1, 100, 20240611),
                             ShardPolicy::kByPredicate, "shard_by_pred");
}

TEST(ShardedDurableRestartTest, FactRangeOnMultiPredicate) {
  CheckShardedDurableRestart(scenarios::MakeDoctors(1, 100, 20240611),
                             ShardPolicy::kByFactRange,
                             "shard_fact_range_doctors");
}

// --- kill points through the full service ---------------------------------

TEST(DurableServiceTest, TornWalTailReplaysThePrefix) {
  auto scenario =
      scenarios::MakeTransClosure(scenarios::GraphKind::kSparse, 40, 60, 7);
  std::vector<std::string> targets;
  std::vector<std::string> churn;
  ScenarioScript(scenario, 3, 2, targets, churn);

  const std::string data_dir = TempDataDir("svc_torn");
  EngineOptions durable_options;
  durable_options.data_dir = data_dir;
  durable_options.checkpoint_interval = 0;  // pure WAL, no checkpoint
  {
    Service durable(scenario.MakeEngine(durable_options));
    RunScript(Submitter(durable), targets, churn, *scenario.symbols);
    EXPECT_EQ(durable.stats().wal_appends, 2 * churn.size());
  }

  // Kill point: the process died mid-append — the final record is torn.
  const std::string wal_path = data_dir + "/delta.wal";
  const std::string bytes = ReadFileBytes(wal_path);
  WriteFileBytes(wal_path, bytes.substr(0, bytes.size() - 5));

  Service recovered(scenario.MakeEngine(durable_options));
  ASSERT_TRUE(recovered.durability_status().ok())
      << recovered.durability_status().message();
  // Every complete record replays; the torn final record is dropped.
  EXPECT_EQ(recovered.stats().recovery_replayed_deltas,
            2 * churn.size() - 1);
  // The lost record was the restore of churn[1]: the recovered state
  // must match a reference that stopped one delta short.
  Service reference(scenario.MakeEngine());
  for (std::size_t d = 0; d + 1 < churn.size(); ++d) {
    DeltaRequest remove;
    remove.removed_fact_texts = {churn[d]};
    Request request;
    request.op = std::move(remove);
    (void)Submitter(reference)(std::move(request));
  }
  // Replay d0..: the script removes churn[0], churn[1], then restores
  // churn[0], churn[1]; losing the last record leaves churn[1] removed.
  DeltaRequest remove_last;
  remove_last.removed_fact_texts = {churn.back()};
  Request remove_request;
  remove_request.op = std::move(remove_last);
  (void)Submitter(reference)(std::move(remove_request));
  DeltaRequest restore_first;
  restore_first.added_fact_texts = {churn.front()};
  Request restore_request;
  restore_request.op = std::move(restore_first);
  (void)Submitter(reference)(std::move(restore_request));

  for (const std::string& target : targets) {
    EnumerateRequest enumerate;
    enumerate.target_text = target;
    enumerate.max_members = 8;
    Request recovered_request, reference_request;
    recovered_request.op = enumerate;
    reference_request.op = enumerate;
    Response from_recovered =
        Submitter(recovered)(std::move(recovered_request));
    Response from_reference =
        Submitter(reference)(std::move(reference_request));
    ASSERT_EQ(from_recovered.status.code(), from_reference.status.code())
        << target;
    ASSERT_EQ(from_recovered.members.size(), from_reference.members.size())
        << target;
    for (std::size_t m = 0; m < from_recovered.members.size(); ++m) {
      EXPECT_EQ(MemberToString(from_recovered.members[m], *scenario.symbols),
                MemberToString(from_reference.members[m], *scenario.symbols))
          << target;
    }
  }
}

TEST(DurableServiceTest, CountersSurfaceThroughStats) {
  auto ws = testing::MakeWorkspace(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).",
      "edge(a, b). edge(b, c).");
  const auto predicate = ws.symbols->FindPredicate("path");
  ASSERT_TRUE(predicate.ok());
  const std::string data_dir = TempDataDir("svc_counters");
  EngineOptions durable_options;
  durable_options.data_dir = data_dir;
  durable_options.checkpoint_interval = 2;
  {
    Service service(Engine::FromParts(ws.program, ws.database,
                                      predicate.value(), durable_options));
    ASSERT_TRUE(service.durability_status().ok());
    for (int i = 0; i < 4; ++i) {
      DeltaRequest delta;
      delta.added_fact_texts = {"edge(c, d" + std::to_string(i) + ")"};
      Request request;
      request.op = std::move(delta);
      Response response = Submitter(service)(std::move(request));
      ASSERT_TRUE(response.status.ok()) << response.status.message();
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.wal_appends, 4u);
    EXPECT_GT(stats.wal_bytes, 0u);
    EXPECT_EQ(stats.checkpoints_written, 2u);  // interval 2, 4 deltas
  }
  Service recovered(Engine::FromParts(ws.program, ws.database,
                                      predicate.value(), durable_options));
  ASSERT_TRUE(recovered.durability_status().ok());
  EXPECT_EQ(recovered.stats().recovery_replayed_deltas, 0u);
  EnumerateRequest enumerate;
  enumerate.target_text = "path(a, d3)";
  Request request;
  request.op = std::move(enumerate);
  Response response = Submitter(recovered)(std::move(request));
  EXPECT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_FALSE(response.members.empty());
}

}  // namespace
}  // namespace whyprov
