// Tests for the util foundation: Status/Result, RNG, statistics, timer,
// cancellation tokens, and the bounded-queue executor.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cancellation.h"
#include "util/executor.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace whyprov::util {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_TRUE(Status::Ok().message().empty());
  const Status error = Status::Error("boom");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.message(), "boom");
}

TEST(StatusTest, CodesAndConvenienceConstructors) {
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  EXPECT_EQ(Status::Error("x").code(), StatusCode::kUnknown);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Error(StatusCode::kNotFound, "y").code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnknown), "UNKNOWN");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

TEST(ResultTest, ValueOr) {
  Result<int> good = 42;
  EXPECT_EQ(good.value_or(7), 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_EQ(bad.value_or(7), 7);
  Result<std::string> text = Status::Error("nope");
  EXPECT_EQ(text.value_or("fallback"), "fallback");
  EXPECT_EQ(Result<std::string>(std::string("hit")).value_or("miss"), "hit");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = Status::Error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  // All residues should occur in 1000 draws.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(StatsTest, EmptySummaryIsZero) {
  SampleSet samples;
  const Summary s = samples.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0);
}

TEST(StatsTest, SingleSample) {
  SampleSet samples;
  samples.Add(5.0);
  const Summary s = samples.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.mean, 5.0);
}

TEST(StatsTest, QuartilesOfUniformRamp) {
  SampleSet samples;
  for (int i = 0; i <= 100; ++i) samples.Add(static_cast<double>(i));
  const Summary s = samples.Summarize();
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.q1, 25.0, 1.0);
  EXPECT_NEAR(s.median, 50.0, 1.0);
  EXPECT_NEAR(s.q3, 75.0, 1.0);
  EXPECT_NEAR(s.mean, 50.0, 0.01);
}

TEST(StatsTest, SummaryIsOrderInvariant) {
  SampleSet ascending;
  SampleSet shuffled;
  const std::vector<double> values{9, 1, 7, 3, 5, 2, 8};
  for (double v : values) shuffled.Add(v);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) ascending.Add(v);
  EXPECT_EQ(ascending.Summarize().median, shuffled.Summarize().median);
  EXPECT_EQ(ascending.Summarize().q1, shuffled.Summarize().q1);
}

TEST(StatsTest, FormatSummaryRowContainsFields) {
  SampleSet samples;
  samples.Add(1.0);
  samples.Add(2.0);
  const std::string row =
      FormatSummaryRow("label", samples.Summarize(), "ms");
  EXPECT_NE(row.find("label"), std::string::npos);
  EXPECT_NE(row.find("n=2"), std::string::npos);
  EXPECT_NE(row.find("ms"), std::string::npos);
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0.0);
}

TEST(CancellationTest, EmptyTokenNeverStops) {
  const CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.InterruptionStatus().ok());
}

TEST(CancellationTest, CancelReachesEveryToken) {
  CancellationSource source;
  const CancellationToken a = source.token();
  const CancellationToken b = source.token();
  EXPECT_FALSE(a.ShouldStop());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(a.InterruptionStatus().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, DeadlineExpiryIsDeadlineExceeded) {
  CancellationSource source;
  source.SetTimeout(1e-9);
  const CancellationToken token = source.token();
  EXPECT_TRUE(token.expired());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.InterruptionStatus().code(),
            StatusCode::kDeadlineExceeded);
  // An explicit cancel outranks the expired deadline.
  source.Cancel();
  EXPECT_EQ(token.InterruptionStatus().code(), StatusCode::kCancelled);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  // Written with direct `if (TryLock())` branches rather than gtest
  // ASSERT wrappers: the thread-safety analysis only tracks a
  // try-acquire used as a branch condition.
  Mutex mutex;
  if (!mutex.TryLock()) {
    FAIL() << "uncontended TryLock failed";
  } else {
    // Contended try-lock must fail without blocking — probe from
    // another thread; a same-thread retry would be undefined.
    bool contended_acquired = false;
    std::thread prober([&mutex, &contended_acquired] {
      if (mutex.TryLock()) {
        contended_acquired = true;
        mutex.Unlock();
      }
    });
    prober.join();
    EXPECT_FALSE(contended_acquired);
    mutex.Unlock();
  }
  // After release, a fresh probe from another thread succeeds.
  bool reacquired = false;
  std::thread reprober([&mutex, &reacquired] {
    if (mutex.TryLock()) {
      reacquired = true;
      mutex.Unlock();
    }
  });
  reprober.join();
  EXPECT_TRUE(reacquired);
}

TEST(MutexTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mutex, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MutexLock lock(mutex);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(CondVarTest, DeadlineWaitTimesOutWhenNeverNotified) {
  Mutex mutex;
  CondVar cv;
  const MutexLock lock(mutex);
  // WaitFor returns true iff the deadline passed; nobody notifies, so
  // both a short and an already-expired deadline must report timeout.
  EXPECT_TRUE(cv.WaitFor(mutex, 0.01));
  EXPECT_TRUE(cv.WaitFor(mutex, -1.0));
  EXPECT_TRUE(cv.WaitUntil(mutex, std::chrono::steady_clock::now()));
}

TEST(CondVarTest, ContendedWakeReachesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool released = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  constexpr int kWaiters = 4;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      const MutexLock lock(mutex);
      while (!released) cv.Wait(mutex);
      ++awake;
    });
  }
  {
    const MutexLock lock(mutex);
    released = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  const MutexLock lock(mutex);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, NotifyOneWakesABlockedDeadlineWaiter) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool timed_out = true;
  std::thread waiter([&] {
    const MutexLock lock(mutex);
    while (!ready) {
      // A generous deadline that only expires if the notify is lost.
      if (cv.WaitFor(mutex, 30.0)) {
        timed_out = true;
        return;
      }
    }
    timed_out = false;
  });
  {
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_FALSE(timed_out);
}

TEST(ExecutorTest, MapCoversEveryIndexExactlyOnce) {
  Executor executor({/*num_threads=*/3, /*queue_capacity=*/8});
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  executor.Map(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, MapWorksWhenQueueIsTinyOrNIsSmall) {
  Executor executor({/*num_threads=*/4, /*queue_capacity=*/1});
  std::atomic<std::size_t> sum{0};
  executor.Map(10, [&sum](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
  executor.Map(1, [&sum](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 46u);
  executor.Map(0, [&sum](std::size_t) { sum.fetch_add(100); });
  EXPECT_EQ(sum.load(), 46u);
}

TEST(ExecutorTest, TrySubmitRefusesWhenTheQueueIsFull) {
  Executor executor({/*num_threads=*/1, /*queue_capacity=*/1});
  Mutex mutex;
  CondVar cv;
  bool release = false;
  // Park the single worker...
  ASSERT_TRUE(executor
                  .TrySubmit([&] {
                    const MutexLock lock(mutex);
                    while (!release) cv.Wait(mutex);
                  })
                  .ok());
  // ...wait until it actually picked the task up (pending -> 0)...
  while (executor.pending() != 0) {
    std::this_thread::yield();
  }
  // ...fill the one queue slot, then watch the bound refuse.
  std::atomic<bool> ran{false};
  ASSERT_TRUE(executor.TrySubmit([&ran] { ran.store(true); }).ok());
  const Status refused = executor.TrySubmit([] {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  {
    const MutexLock lock(mutex);
    release = true;
  }
  cv.NotifyAll();
  executor.Shutdown();  // drains the queued task before joining
  EXPECT_TRUE(ran.load());
  // After shutdown, admission is closed for good.
  EXPECT_FALSE(executor.TrySubmit([] {}).ok());
}

}  // namespace
}  // namespace whyprov::util
