// Tests for the util foundation: Status/Result, RNG, statistics, timer,
// cancellation tokens, and the bounded-queue executor.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cancellation.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace whyprov::util {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_TRUE(Status::Ok().message().empty());
  const Status error = Status::Error("boom");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.message(), "boom");
}

TEST(StatusTest, CodesAndConvenienceConstructors) {
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  EXPECT_EQ(Status::Error("x").code(), StatusCode::kUnknown);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Error(StatusCode::kNotFound, "y").code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnknown), "UNKNOWN");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

TEST(ResultTest, ValueOr) {
  Result<int> good = 42;
  EXPECT_EQ(good.value_or(7), 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_EQ(bad.value_or(7), 7);
  Result<std::string> text = Status::Error("nope");
  EXPECT_EQ(text.value_or("fallback"), "fallback");
  EXPECT_EQ(Result<std::string>(std::string("hit")).value_or("miss"), "hit");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = Status::Error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result = std::vector<int>{1, 2, 3};
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  // All residues should occur in 1000 draws.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(StatsTest, EmptySummaryIsZero) {
  SampleSet samples;
  const Summary s = samples.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0);
}

TEST(StatsTest, SingleSample) {
  SampleSet samples;
  samples.Add(5.0);
  const Summary s = samples.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.mean, 5.0);
}

TEST(StatsTest, QuartilesOfUniformRamp) {
  SampleSet samples;
  for (int i = 0; i <= 100; ++i) samples.Add(static_cast<double>(i));
  const Summary s = samples.Summarize();
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.q1, 25.0, 1.0);
  EXPECT_NEAR(s.median, 50.0, 1.0);
  EXPECT_NEAR(s.q3, 75.0, 1.0);
  EXPECT_NEAR(s.mean, 50.0, 0.01);
}

TEST(StatsTest, SummaryIsOrderInvariant) {
  SampleSet ascending;
  SampleSet shuffled;
  const std::vector<double> values{9, 1, 7, 3, 5, 2, 8};
  for (double v : values) shuffled.Add(v);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) ascending.Add(v);
  EXPECT_EQ(ascending.Summarize().median, shuffled.Summarize().median);
  EXPECT_EQ(ascending.Summarize().q1, shuffled.Summarize().q1);
}

TEST(StatsTest, FormatSummaryRowContainsFields) {
  SampleSet samples;
  samples.Add(1.0);
  samples.Add(2.0);
  const std::string row =
      FormatSummaryRow("label", samples.Summarize(), "ms");
  EXPECT_NE(row.find("label"), std::string::npos);
  EXPECT_NE(row.find("n=2"), std::string::npos);
  EXPECT_NE(row.find("ms"), std::string::npos);
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0.0);
}

TEST(CancellationTest, EmptyTokenNeverStops) {
  const CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.InterruptionStatus().ok());
}

TEST(CancellationTest, CancelReachesEveryToken) {
  CancellationSource source;
  const CancellationToken a = source.token();
  const CancellationToken b = source.token();
  EXPECT_FALSE(a.ShouldStop());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(a.InterruptionStatus().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, DeadlineExpiryIsDeadlineExceeded) {
  CancellationSource source;
  source.SetTimeout(1e-9);
  const CancellationToken token = source.token();
  EXPECT_TRUE(token.expired());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.InterruptionStatus().code(),
            StatusCode::kDeadlineExceeded);
  // An explicit cancel outranks the expired deadline.
  source.Cancel();
  EXPECT_EQ(token.InterruptionStatus().code(), StatusCode::kCancelled);
}

TEST(ExecutorTest, MapCoversEveryIndexExactlyOnce) {
  Executor executor({/*num_threads=*/3, /*queue_capacity=*/8});
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  executor.Map(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, MapWorksWhenQueueIsTinyOrNIsSmall) {
  Executor executor({/*num_threads=*/4, /*queue_capacity=*/1});
  std::atomic<std::size_t> sum{0};
  executor.Map(10, [&sum](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
  executor.Map(1, [&sum](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 46u);
  executor.Map(0, [&sum](std::size_t) { sum.fetch_add(100); });
  EXPECT_EQ(sum.load(), 46u);
}

TEST(ExecutorTest, TrySubmitRefusesWhenTheQueueIsFull) {
  Executor executor({/*num_threads=*/1, /*queue_capacity=*/1});
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  // Park the single worker...
  ASSERT_TRUE(executor
                  .TrySubmit([&] {
                    std::unique_lock<std::mutex> lock(mutex);
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  // ...wait until it actually picked the task up (pending -> 0)...
  while (executor.pending() != 0) {
    std::this_thread::yield();
  }
  // ...fill the one queue slot, then watch the bound refuse.
  std::atomic<bool> ran{false};
  ASSERT_TRUE(executor.TrySubmit([&ran] { ran.store(true); }).ok());
  const Status refused = executor.TrySubmit([] {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  executor.Shutdown();  // drains the queued task before joining
  EXPECT_TRUE(ran.load());
  // After shutdown, admission is closed for good.
  EXPECT_FALSE(executor.TrySubmit([] {}).ok());
}

}  // namespace
}  // namespace whyprov::util
