#ifndef WHYPROV_TESTS_WORKSPACE_H_
#define WHYPROV_TESTS_WORKSPACE_H_

// Shared test helper: parse a program and a database into one workspace.

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/program.h"

namespace whyprov::testing {

struct Workspace {
  std::shared_ptr<datalog::SymbolTable> symbols;
  datalog::Program program;
  datalog::Database database;

  datalog::Fact ParseFact(const std::string& text) const {
    auto fact = datalog::Parser::ParseFact(symbols, text);
    EXPECT_TRUE(fact.ok()) << fact.status().message();
    return std::move(fact).value();
  }
};

inline Workspace MakeWorkspace(const char* program_text,
                               const char* database_text) {
  auto symbols = std::make_shared<datalog::SymbolTable>();
  auto program = datalog::Parser::ParseProgram(symbols, program_text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  auto database = datalog::Parser::ParseDatabase(symbols, database_text);
  EXPECT_TRUE(database.ok()) << database.status().message();
  return Workspace{symbols, std::move(program).value(),
                   std::move(database).value()};
}

/// Renders a provenance member (set of facts) as a canonical string like
/// "{S(a), T(a, a, d)}" for readable assertions.
inline std::string MemberToString(const std::vector<datalog::Fact>& member,
                                  const datalog::SymbolTable& symbols) {
  std::string out = "{";
  for (std::size_t i = 0; i < member.size(); ++i) {
    if (i > 0) out += ", ";
    out += datalog::FactToString(member[i], symbols);
  }
  out += "}";
  return out;
}

/// Renders a whole family as a set of canonical member strings.
inline std::set<std::string> FamilyToStrings(
    const std::set<std::vector<datalog::Fact>>& family,
    const datalog::SymbolTable& symbols) {
  std::set<std::string> out;
  for (const auto& member : family) {
    out.insert(MemberToString(member, symbols));
  }
  return out;
}

}  // namespace whyprov::testing

#endif  // WHYPROV_TESTS_WORKSPACE_H_
