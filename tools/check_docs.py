#!/usr/bin/env python3
"""Doc-drift gate: the normative docs must match the shipped code.

Checks (all must pass; exit 1 with a per-failure report otherwise):

  1. The frame-type table in docs/WIRE_PROTOCOL.md lists exactly the
     `kFrame*` enumerators of src/net/wire.h, each with its selector
     byte.
  2. The status-code table in docs/WIRE_PROTOCOL.md lists exactly the
     enumerators of util::StatusCode (src/util/status.h) with their
     values, and each row's C ABI name matches the whyprov_status
     enumerator of the same value in src/net/whyprov_c.h.
  3. docs/STORAGE_FORMAT.md quotes the on-disk magic strings and
     format versions declared in src/storage/wal.h and
     src/storage/checkpoint.h.
  4. Every relative markdown link in README.md, ROADMAP.md, and
     docs/*.md resolves to an existing file in the repository.
     (Links to http(s), mailto, pure anchors, and paths that escape
     the repo — the README's badge links — are out of scope.)
  5. The QoS surface: the whyprov_qos_class enumerators of
     src/net/whyprov_c.h agree with qos::QosClass (src/qos/qos.h),
     docs/WIRE_PROTOCOL.md states their values, and its per-tenant
     stats table lists exactly the fields of `struct WireTenantStats`
     (src/net/wire.h), in declaration order.
  6. The plan-simplify surface: whyprov_stats (src/net/whyprov_c.h)
     ends with the four appended plan-simplify counters and the
     plan-simplify section table of docs/WIRE_PROTOCOL.md lists
     exactly those fields, in order.

Usage: python3 tools/check_docs.py   (from anywhere; paths are
repo-relative to this script's parent directory)
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

WIRE_H = REPO / "src/net/wire.h"
STATUS_H = REPO / "src/util/status.h"
C_ABI_H = REPO / "src/net/whyprov_c.h"
WAL_H = REPO / "src/storage/wal.h"
CHECKPOINT_H = REPO / "src/storage/checkpoint.h"
WIRE_DOC = REPO / "docs/WIRE_PROTOCOL.md"
STORAGE_DOC = REPO / "docs/STORAGE_FORMAT.md"

LINKED_DOCS = [REPO / "README.md", REPO / "ROADMAP.md"] + sorted(
    (REPO / "docs").glob("*.md")
)


def parse_frame_enum(text):
    """kFrame* enumerators of `enum FrameType` -> {name: value}."""
    block = re.search(r"enum FrameType[^{]*\{(.*?)\}", text, re.DOTALL)
    if not block:
        raise SystemExit(f"error: cannot find 'enum FrameType' in {WIRE_H}")
    return {
        name: int(value, 16)
        for name, value in re.findall(
            r"(kFrame\w+)\s*=\s*0x([0-9a-fA-F]+)", block.group(1)
        )
    }


def parse_sequential_enum(text, enum_pattern, member_pattern, where):
    """An enum whose members may rely on implicit sequential values."""
    block = re.search(enum_pattern, text, re.DOTALL)
    if not block:
        raise SystemExit(f"error: cannot find enum in {where}")
    members = {}
    next_value = 0
    for name, explicit in re.findall(member_pattern, block.group(1)):
        value = int(explicit) if explicit else next_value
        members[name] = value
        next_value = value + 1
    return members


def parse_doc_table(doc_text, first_cell_pattern):
    """Markdown table rows whose first cell matches the pattern.

    Returns a list of rows, each a list of cell strings with the
    backtick code markup stripped.
    """
    rows = []
    for line in doc_text.splitlines():
        if not line.startswith("|"):
            continue
        cells = [c.strip().strip("`") for c in line.strip("|").split("|")]
        if cells and re.fullmatch(first_cell_pattern, cells[0]):
            rows.append(cells)
    return rows


def check_frame_table(failures):
    enum = parse_frame_enum(WIRE_H.read_text())
    doc = {}
    for cells in parse_doc_table(WIRE_DOC.read_text(), r"kFrame\w+"):
        if len(cells) < 2 or not re.fullmatch(r"0x[0-9a-fA-F]+", cells[1]):
            failures.append(
                f"{WIRE_DOC.name}: row for {cells[0]} lacks a 0xNN "
                "selector in its second column"
            )
            continue
        if cells[0] in doc:
            failures.append(f"{WIRE_DOC.name}: duplicate row for {cells[0]}")
        doc[cells[0]] = int(cells[1], 16)

    for name, value in sorted(enum.items(), key=lambda kv: kv[1]):
        if name not in doc:
            failures.append(
                f"{WIRE_DOC.name}: frame table is missing {name} "
                f"(selector 0x{value:02X} in net/wire.h)"
            )
        elif doc[name] != value:
            failures.append(
                f"{WIRE_DOC.name}: {name} documented as 0x{doc[name]:02X} "
                f"but net/wire.h says 0x{value:02X}"
            )
    for name in doc:
        if name not in enum:
            failures.append(
                f"{WIRE_DOC.name}: frame table lists {name}, which is not "
                "in net/wire.h"
            )


def check_status_table(failures):
    codes = parse_sequential_enum(
        STATUS_H.read_text(),
        r"enum class StatusCode\s*\{(.*?)\}",
        r"(k\w+)\s*(?:=\s*(\d+))?\s*,",
        STATUS_H,
    )
    abi = parse_sequential_enum(
        C_ABI_H.read_text(),
        r"typedef enum whyprov_status\s*\{(.*?)\}",
        r"(WHYPROV_[A-Z_]+)\s*(?:=\s*(\d+))?\s*,?",
        C_ABI_H,
    )
    abi_by_value = {v: n for n, v in abi.items()}

    doc = {}
    for cells in parse_doc_table(WIRE_DOC.read_text(), r"k[A-Z]\w+"):
        if cells[0].startswith("kFrame"):
            continue
        if len(cells) < 3 or not cells[1].isdigit():
            failures.append(
                f"{WIRE_DOC.name}: status row for {cells[0]} lacks a "
                "numeric value / C ABI name"
            )
            continue
        doc[cells[0]] = (int(cells[1]), cells[2])

    for name, value in sorted(codes.items(), key=lambda kv: kv[1]):
        if name not in doc:
            failures.append(
                f"{WIRE_DOC.name}: status table is missing {name} "
                f"(= {value} in util/status.h)"
            )
            continue
        doc_value, doc_abi = doc[name]
        if doc_value != value:
            failures.append(
                f"{WIRE_DOC.name}: {name} documented as {doc_value} but "
                f"util/status.h says {value}"
            )
        expected_abi = abi_by_value.get(value)
        if expected_abi is None:
            failures.append(
                f"{C_ABI_H.name}: no whyprov_status enumerator with "
                f"value {value} (util/status.h has {name})"
            )
        elif doc_abi != expected_abi:
            failures.append(
                f"{WIRE_DOC.name}: {name} documented as {doc_abi} but the "
                f"C ABI name for value {value} is {expected_abi}"
            )
    for name in doc:
        if name not in codes:
            failures.append(
                f"{WIRE_DOC.name}: status table lists {name}, which is "
                "not in util/status.h"
            )


def check_storage_constants(failures):
    doc = STORAGE_DOC.read_text()
    for header, magic_name, version_name in [
        (WAL_H, "kWalMagic", "kWalFormatVersion"),
        (CHECKPOINT_H, "kCheckpointMagic", "kCheckpointFormatVersion"),
    ]:
        text = header.read_text()
        magic = re.search(magic_name + r'\s*=\s*"((?:[^"\\]|\\.)*)"', text)
        version = re.search(version_name + r"\s*=\s*(\d+)", text)
        if not magic or not version:
            failures.append(
                f"{header.name}: cannot find {magic_name}/{version_name}"
            )
            continue
        # The doc quotes the magic exactly as the source literal spells
        # it (escape sequences like \n stay as two characters).
        if f'"{magic.group(1)}"' not in doc:
            failures.append(
                f'{STORAGE_DOC.name}: does not quote the magic '
                f'"{magic.group(1)}" from {header.name}'
            )
        if f"(currently {version.group(1)})" not in doc:
            failures.append(
                f"{STORAGE_DOC.name}: does not state the current format "
                f"version {version.group(1)} from {header.name} "
                f'(expected the phrase "(currently {version.group(1)})")'
            )


QOS_H = REPO / "src/qos/qos.h"


def check_qos_surface(failures):
    """The QoS lane values and the per-tenant stats row layout."""
    abi = parse_sequential_enum(
        C_ABI_H.read_text(),
        r"typedef enum whyprov_qos_class\s*\{(.*?)\}",
        r"(WHYPROV_QOS_[A-Z_]+)\s*(?:=\s*(\d+))?\s*,?",
        C_ABI_H,
    )
    cpp = parse_sequential_enum(
        QOS_H.read_text(),
        r"enum class QosClass[^{]*\{(.*?)\}",
        r"(k\w+)\s*(?:=\s*(\d+))?\s*,?",
        QOS_H,
    )
    pairs = [("WHYPROV_QOS_INTERACTIVE", "kInteractive"),
             ("WHYPROV_QOS_BATCH", "kBatch")]
    for abi_name, cpp_name in pairs:
        if abi_name not in abi or cpp_name not in cpp:
            failures.append(
                f"QoS enums: {abi_name} ({C_ABI_H.name}) or {cpp_name} "
                f"({QOS_H.name}) is missing"
            )
        elif abi[abi_name] != cpp[cpp_name]:
            failures.append(
                f"QoS enums: {abi_name} = {abi[abi_name]} but {cpp_name} "
                f"= {cpp[cpp_name]} — the lane byte must agree across "
                "the C ABI and qos/qos.h"
            )

    doc = WIRE_DOC.read_text()
    interactive = abi.get("WHYPROV_QOS_INTERACTIVE", 0)
    batch = abi.get("WHYPROV_QOS_BATCH", 1)
    phrase = f"{interactive} = interactive, {batch} = batch"
    if phrase not in doc:
        failures.append(
            f"{WIRE_DOC.name}: does not state the qos_class values "
            f'(expected the phrase "{phrase}")'
        )

    # The per-tenant table of WIRE_PROTOCOL.md vs struct WireTenantStats:
    # same field names, same order.
    struct = re.search(
        r"struct WireTenantStats\s*\{(.*?)\};", WIRE_H.read_text(), re.DOTALL
    )
    if not struct:
        failures.append(f"{WIRE_H.name}: cannot find struct WireTenantStats")
        return
    struct_fields = re.findall(
        r"^\s*(?:std::\w+|double|float|bool)\s+(\w+)",
        struct.group(1),
        re.MULTILINE,
    )
    section = re.search(
        r"per-tenant section\*\*.*?\n\n(.*?)\n\n", doc, re.DOTALL
    )
    if not section:
        failures.append(
            f"{WIRE_DOC.name}: cannot find the per-tenant section table "
            "of kFrameStatsReply"
        )
        return
    doc_fields = [
        cells[0]
        for cells in parse_doc_table(section.group(1), r"\w+")
        if cells[0] != "field"
    ]
    if doc_fields != struct_fields:
        failures.append(
            f"{WIRE_DOC.name}: per-tenant stats table fields {doc_fields} "
            f"!= WireTenantStats fields {struct_fields} (net/wire.h, "
            "declaration order)"
        )


def check_simplify_surface(failures):
    """The plan-simplify counters: C ABI struct tail vs doc table.

    The wire encoding of kFrameStatsReply writes whyprov_stats fields in
    declaration order with the simplify counters as the appended tail, so
    the doc table, the struct tail, and the field order must all agree.
    """
    expected = [
        "plans_simplified",
        "simplify_vars_removed",
        "simplify_clauses_removed",
        "simplify_micros",
    ]
    struct = re.search(
        r"typedef struct whyprov_stats\s*\{(.*?)\}",
        C_ABI_H.read_text(),
        re.DOTALL,
    )
    if not struct:
        failures.append(f"{C_ABI_H.name}: cannot find struct whyprov_stats")
        return
    fields = re.findall(
        r"^\s*(?:uint64_t|size_t|double|int)\s+(\w+);",
        struct.group(1),
        re.MULTILINE,
    )
    if fields[-len(expected):] != expected:
        failures.append(
            f"{C_ABI_H.name}: whyprov_stats must end with the appended "
            f"plan-simplify counters {expected} (wire append-only tail); "
            f"found {fields[-len(expected):]}"
        )
    section = re.search(
        r"plan-simplify\s*section\*\*.*?\n\n(.*?)\n\n",
        WIRE_DOC.read_text(),
        re.DOTALL,
    )
    if not section:
        failures.append(
            f"{WIRE_DOC.name}: cannot find the plan-simplify section "
            "table of kFrameStatsReply"
        )
        return
    doc_fields = [
        cells[0]
        for cells in parse_doc_table(section.group(1), r"\w+")
        if cells[0] != "field"
    ]
    if doc_fields != expected:
        failures.append(
            f"{WIRE_DOC.name}: plan-simplify section fields {doc_fields} "
            f"!= the appended whyprov_stats counters {expected}"
        )


LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(failures):
    for doc in LINKED_DOCS:
        for target in LINK_PATTERN.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if REPO not in resolved.parents and resolved != REPO:
                continue  # escapes the repo (e.g. the README badges)
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(REPO)}: broken link '{target}'"
                )


def main():
    failures = []
    check_frame_table(failures)
    check_status_table(failures)
    check_storage_constants(failures)
    check_qos_surface(failures)
    check_simplify_surface(failures)
    check_links(failures)
    if failures:
        for failure in failures:
            print(f"DOC DRIFT: {failure}")
        print(f"\ncheck_docs: {len(failures)} failure(s)")
        return 1
    print(
        "check_docs: frame table, status table, storage constants, QoS "
        f"surface, simplify surface, and {len(LINKED_DOCS)} files' links "
        "all match the sources"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
