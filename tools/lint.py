#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Run from the repository root:  python3 tools/lint.py
Exit status is non-zero iff any finding is reported. CI runs this as a
gating job next to clang-tidy.

Rules (each has a NOLINT category for per-line suppression):

  whyprov-raw-sync
      Outside src/util/mutex.h, code must use util::Mutex /
      util::MutexLock / util::CondVar — never std::mutex,
      std::lock_guard, std::unique_lock, std::condition_variable and
      friends, nor include <mutex> / <condition_variable> /
      <shared_mutex>. The wrappers carry the Clang thread-safety
      annotations; a raw primitive is invisible to the analysis.

  whyprov-unchecked-value
      `.value()` on a util::Result (or optional) must be preceded by an
      `ok()` / `has_value()` / `status()` check of the same variable in
      the same function. Chained `Foo(...).value()` with no named
      result is always a finding: there is nothing to have checked.

  whyprov-raw-frame-io
      Wire frames must go through the checked helpers in net/wire.h
      (WriteFrame / ReadFrame, WireWriter / WireReader). Outside
      util/socket.* and net/wire.cc, calls to SendAll / RecvAll or
      manual frame-length byte shifting are findings — hand-rolled
      size arithmetic is how length-prefix bugs happen.

  whyprov-nolint-reason
      Every NOLINT must be per-line, name a category, and carry a
      reason: `// NOLINT(category): why`. Bare NOLINT and
      NOLINTBEGIN/END blocks are findings — blanket suppressions hide
      new violations.

Suppress a single line with its category and a reason, e.g.:
    socket_.SendAll(data, size);  // NOLINT(whyprov-raw-frame-io): ...
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LINT_DIRS = ("src", "tests", "bench", "fuzz", "tools")
CXX_SUFFIXES = {".h", ".cc"}

# --- rule configuration ------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any|call_once"
    r"|once_flag)\b"
)
RAW_SYNC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
)
# The one place allowed to touch the raw primitives: the wrapper itself.
RAW_SYNC_ALLOWED = {pathlib.PurePosixPath("src/util/mutex.h")}

VALUE_CALL_RE = re.compile(
    r"(?:std::move\(\s*(?:\*?)(\w+)\s*\)|(\b\w+))\s*(?:\.|->)\s*value\s*\(\s*\)"
)
# `Foo(...).value()` — a temporary nobody could have checked. Does NOT
# match `std::move(x).value()`: that is the named-identifier case above
# (the check window is searched for `x`). Production code (src/) only:
# tests deliberately chain .value() on known-good literals, where the
# debug assert inside value() is the check.
CHAINED_VALUE_RE = re.compile(r"\)\s*\.\s*value\s*\(\s*\)")
MOVED_IDENTIFIER_RE = re.compile(r"std::move\(\s*\*?\w+\s*\)\s*$")

FRAME_IO_RE = re.compile(r"\b(?:SendAll|RecvAll)\s*\(")
# Manual length-prefix assembly: byte-shifting a length into or out of a
# buffer, as WriteFrame/ReadFrame do internally.
FRAME_SHIFT_RE = re.compile(r"length\s*(?:>>|<<)\s*shift|shift\s*<\s*32")
FRAME_IO_ALLOWED = {
    pathlib.PurePosixPath("src/util/socket.h"),
    pathlib.PurePosixPath("src/util/socket.cc"),
    pathlib.PurePosixPath("src/util/wire_format.h"),
    pathlib.PurePosixPath("src/util/wire_format.cc"),
    pathlib.PurePosixPath("src/net/wire.cc"),
}

NOLINT_RE = re.compile(r"NOLINT(\w*)")
NOLINT_OK_RE = re.compile(r"NOLINT(?:NEXTLINE)?\(([\w\-/,: ]+)\)\s*:\s*\S")
SUPPRESS_RE = re.compile(r"NOLINT(?:NEXTLINE)?\(([\w\-/,: ]+)\)")

# Identifier "checked" markers for whyprov-unchecked-value.
CHECK_FORMS = ("ok", "has_value", "status")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets.

    Keeps NOLINT comments intact (the suppression scanner needs them);
    everything else inside comments/strings becomes spaces so the rule
    regexes cannot match there.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            if "NOLINT" not in text[i:end]:
                for j in range(i, end):
                    out[j] = " "
            i = end
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            for j in range(i, end):
                if out[j] != "\n":
                    out[j] = " "
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            for k in range(i + 1, j - 1):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line_number, rule, message, line_text,
            previous_line_text=""):
        if self._suppressed(rule, line_text, previous_line_text):
            return
        self.items.append((path, line_number, rule, message))

    @staticmethod
    def _suppressed(rule, line_text, previous_line_text):
        match = SUPPRESS_RE.search(line_text)
        if match and rule in match.group(1):
            return True
        previous = SUPPRESS_RE.search(previous_line_text)
        return (previous is not None and "NOLINTNEXTLINE" in previous_line_text
                and rule in previous.group(1))

    def report(self):
        for path, line_number, rule, message in sorted(self.items):
            print(f"{path}:{line_number}: [{rule}] {message}")
        return len(self.items)


def relative(path):
    return pathlib.PurePosixPath(path.relative_to(REPO_ROOT).as_posix())


def check_raw_sync(path, lines, findings):
    if relative(path) in RAW_SYNC_ALLOWED:
        return
    for number, line in enumerate(lines, 1):
        if RAW_SYNC_RE.search(line):
            findings.add(path, number, "whyprov-raw-sync",
                         "raw std synchronization primitive; use "
                         "util::Mutex/MutexLock/CondVar (util/mutex.h)",
                         line, lines[number - 2] if number > 1 else "")
        if RAW_SYNC_INCLUDE_RE.search(line):
            findings.add(path, number, "whyprov-raw-sync",
                         "include of a raw synchronization header; "
                         "include \"util/mutex.h\" instead", line,
                         lines[number - 2] if number > 1 else "")


def enclosing_function_start(text, position):
    """Best-effort offset of the body of the function containing
    `position`: the outermost open brace whose header text does not
    look like a namespace/class/struct/enum/extern block."""
    depth_stack = []
    for i, c in enumerate(text[:position]):
        if c == "{":
            depth_stack.append(i)
        elif c == "}" and depth_stack:
            depth_stack.pop()
    non_function = re.compile(
        r"\b(namespace|class|struct|union|enum|extern)\b[^;{}()]*$")
    for brace in depth_stack:
        header = text[max(0, brace - 200):brace]
        if not non_function.search(header):
            return brace
    return 0


def check_unchecked_value(path, text, findings):
    lines = text.splitlines()

    def line_of(offset):
        return text.count("\n", 0, offset) + 1

    for match in VALUE_CALL_RE.finditer(text):
        identifier = match.group(1) or match.group(2)
        if identifier in ("std", "move"):
            continue
        start = enclosing_function_start(text, match.start())
        window = text[start:match.start()]
        checked = re.compile(
            r"\b%s\b\s*(?:\.|->)\s*(?:%s)\s*\("
            % (re.escape(identifier), "|".join(CHECK_FORMS)))
        if checked.search(window):
            continue
        number = line_of(match.start())
        findings.add(path, number, "whyprov-unchecked-value",
                     f"`{identifier}.value()` without a preceding "
                     f"{identifier}.ok()/has_value() check in the same "
                     "function", lines[number - 1],
                     lines[number - 2] if number > 1 else "")
    if not str(relative(path)).startswith("src/"):
        return
    for match in CHAINED_VALUE_RE.finditer(text):
        if MOVED_IDENTIFIER_RE.search(text, 0, match.start() + 1):
            continue  # `std::move(x).value()`: handled by the rule above
        number = line_of(match.start())
        findings.add(path, number, "whyprov-unchecked-value",
                     "chained `.value()` on an unnamed temporary — bind "
                     "the result and check ok() first",
                     lines[number - 1],
                     lines[number - 2] if number > 1 else "")


def check_raw_frame_io(path, lines, findings):
    if relative(path) in FRAME_IO_ALLOWED:
        return
    for number, line in enumerate(lines, 1):
        if FRAME_IO_RE.search(line):
            findings.add(path, number, "whyprov-raw-frame-io",
                         "raw SendAll/RecvAll; frames go through "
                         "WriteFrame/ReadFrame (net/wire.h)", line,
                         lines[number - 2] if number > 1 else "")
        if FRAME_SHIFT_RE.search(line):
            findings.add(path, number, "whyprov-raw-frame-io",
                         "manual frame-length byte shifting; use the "
                         "net/wire.h helpers", line,
                         lines[number - 2] if number > 1 else "")


def check_nolint_discipline(path, lines, findings):
    for number, line in enumerate(lines, 1):
        for match in NOLINT_RE.finditer(line):
            suffix = match.group(1)
            if suffix in ("BEGIN", "END"):
                findings.add(path, number, "whyprov-nolint-reason",
                             "NOLINT block suppression; use per-line "
                             "NOLINT(category): reason", line)
            elif not NOLINT_OK_RE.search(line[match.start():]):
                findings.add(path, number, "whyprov-nolint-reason",
                             "NOLINT without `(category): reason`", line)


def lint_file(path, findings):
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    stripped_lines = stripped.splitlines()
    raw_lines = raw.splitlines()
    check_raw_sync(path, stripped_lines, findings)
    check_unchecked_value(path, stripped, findings)
    check_raw_frame_io(path, stripped_lines, findings)
    check_nolint_discipline(path, raw_lines, findings)


def main():
    findings = Findings()
    count = 0
    for directory in LINT_DIRS:
        root = REPO_ROOT / directory
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                lint_file(path, findings)
                count += 1
    reported = findings.report()
    print(f"lint.py: {count} files, {reported} finding(s)")
    return 1 if reported else 0


if __name__ == "__main__":
    sys.exit(main())
